// Package unitchecker implements the `go vet -vettool` protocol for the
// cdcsvet suite without depending on golang.org/x/tools: cmd/go invokes
// the tool once per compilation unit with the path to a JSON config
// describing the unit's files and the export data of its dependencies;
// the tool type-checks the unit from that config alone, runs its
// analyzers, writes the (empty) facts file cmd/go expects, and reports
// diagnostics on stderr with a non-zero exit.
//
// The handshake, observed from go1.24 cmd/go and matching x/tools'
// unitchecker:
//
//	cdcsvet -flags            → JSON list of tool flags (none)
//	cdcsvet -V=full           → one version line, hashed into build IDs
//	cdcsvet <unit>/vet.cfg    → analyze one unit
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"repro/internal/lint/analysis"
)

// Config mirrors the vet config JSON cmd/go writes for each unit.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// Run analyzes the unit described by cfgPath and returns the process
// exit code: 0 clean, 1 operational failure, 2 diagnostics reported.
func Run(cfgPath string, analyzers []*analysis.Analyzer, stderr io.Writer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "cdcsvet: %v\n", err)
		return 1
	}
	// cmd/go caches analysis facts per unit in the vetx file and fails
	// if the tool does not produce one; the suite carries no facts, so
	// an empty file is the correct output — and for VetxOnly units
	// (dependencies analyzed solely for their facts) it is the whole
	// job.
	if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0666); err != nil {
		fmt.Fprintf(stderr, "cdcsvet: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "cdcsvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tconf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "cdcsvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := analysis.Run(&analysis.Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "cdcsvet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(cfg.GoFiles) == 0 && !cfg.VetxOnly {
		return nil, fmt.Errorf("%s: no Go files to analyze", path)
	}
	return cfg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

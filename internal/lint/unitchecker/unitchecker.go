// Package unitchecker implements the `go vet -vettool` protocol for the
// cdcsvet suite without depending on golang.org/x/tools: cmd/go invokes
// the tool once per compilation unit with the path to a JSON config
// describing the unit's files and the export data of its dependencies;
// the tool type-checks the unit from that config alone, runs its
// analyzers, writes the unit's facts file (vetx) for downstream units,
// and reports diagnostics on stderr with a non-zero exit.
//
// Facts relay. cmd/go threads a vetx file from each dependency unit to
// its importers via Config.PackageVetx and expects this tool to write
// its own under Config.VetxOutput. The driver decodes every incoming
// vetx into one analysis.Facts store, analyzes the unit with it, and
// serializes the merged store (imported ∪ exported) — merging is what
// makes facts transitive: a sentinel declared two hops down still
// reaches the top-level unit even if the middle package exports
// nothing itself. Units cmd/go wants only for their facts arrive with
// VetxOnly=true; for those the driver runs just the fact-exporting
// analyzers (FactTypes != nil) and never fails — a dependency that
// cannot be parsed or type-checked yields an empty facts file, not a
// broken build. Standard-library units are skipped outright: the
// module's invariants are about its own sentinels, and the Err* name
// heuristic already covers stdlib sentinels without facts.
//
// The handshake, observed from go1.24 cmd/go and matching x/tools'
// unitchecker:
//
//	cdcsvet -flags            → JSON list of tool flags (none)
//	cdcsvet -V=full           → one version line, hashed into build IDs
//	cdcsvet <unit>/vet.cfg    → analyze one unit
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"repro/internal/lint/analysis"
)

// Config mirrors the vet config JSON cmd/go writes for each unit.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// Run analyzes the unit described by cfgPath and returns the process
// exit code: 0 clean, 1 operational failure, 2 diagnostics reported.
func Run(cfgPath string, analyzers []*analysis.Analyzer, stderr io.Writer) int {
	cfg, err := readConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "cdcsvet: %v\n", err)
		return 1
	}
	analysis.RegisterFactTypes(analyzers)

	// succeed writes facts (or an empty placeholder on nil) and exits
	// clean. cmd/go caches the vetx per unit and fails if the tool does
	// not produce one, so every exit path must write the file.
	succeed := func(facts *analysis.Facts) int {
		data := []byte{}
		if facts != nil {
			if enc, err := facts.Encode(); err == nil {
				data = enc
			}
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0666); err != nil {
			fmt.Fprintf(stderr, "cdcsvet: %v\n", err)
			return 1
		}
		return 0
	}

	if cfg.VetxOnly && cfg.Standard[cfg.ImportPath] {
		return succeed(nil)
	}

	facts := analysis.NewFacts()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			// A missing dependency vetx degrades cross-package facts
			// for this unit, it does not break the build.
			continue
		}
		if err := facts.Decode(data); err != nil {
			fmt.Fprintf(stderr, "cdcsvet: %s: %v\n", vetx, err)
			return 1
		}
	}

	suite := analyzers
	if cfg.VetxOnly {
		// Dependency-only unit: cmd/go wants just its facts. Run the
		// fact producers and suppress their diagnostics — the unit's
		// own package gets fully analyzed in its own invocation.
		suite = nil
		for _, a := range analyzers {
			if a.FactTypes != nil {
				suite = append(suite, a)
			}
		}
		if len(suite) == 0 {
			return succeed(facts)
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
				return succeed(facts)
			}
			fmt.Fprintf(stderr, "cdcsvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		// Only reachable for VetxOnly units (readConfig rejects the
		// rest); nothing to export facts from.
		return succeed(facts)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImporter.Import(importPath)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	tconf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.VetxOnly || cfg.SucceedOnTypecheckFailure {
			return succeed(facts)
		}
		fmt.Fprintf(stderr, "cdcsvet: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	res, err := analysis.RunPackage(&analysis.Package{
		Path:  cfg.ImportPath,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, suite, facts)
	if err != nil {
		if cfg.VetxOnly {
			return succeed(facts)
		}
		fmt.Fprintf(stderr, "cdcsvet: %v\n", err)
		return 1
	}
	if code := succeed(res.Facts); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintf(stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(res.Diagnostics) > 0 {
		return 2
	}
	return 0
}

func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(cfg.GoFiles) == 0 && !cfg.VetxOnly {
		return nil, fmt.Errorf("%s: no Go files to analyze", path)
	}
	return cfg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

package unitchecker_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetFactsRelay is the end-to-end proof that facts survive the
// unitchecker wire: it builds the real cdcsvet binary, lays out a
// scratch module whose sentinel package and consumer package are
// separate compilation units, and runs `go vet -vettool=` over it. The
// consumer compares against a sentinel whose name does NOT start with
// Err, so the only way errsentinel can flag it is by importing the
// IsSentinel fact that the sentinel package's vet invocation exported
// through its .vetx file — the gob round trip under test.
func TestVetFactsRelay(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to the go tool")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not in PATH: %v", err)
	}

	tmp := t.TempDir()
	vettool := filepath.Join(tmp, "cdcsvet")
	build := exec.Command(goTool, "build", "-o", vettool, "repro/cmd/cdcsvet")
	build.Dir = repoRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cdcsvet: %v\n%s", err, out)
	}

	mod := filepath.Join(tmp, "scratch")
	writeFile(t, mod, "go.mod", "module scratch\n\ngo 1.22\n")
	writeFile(t, mod, "durable/durable.go", `package durable

import "errors"

// ErrTorn is Err-named: the in-package name heuristic alone covers it.
var ErrTorn = errors.New("durable: torn write")

// Torn is a sentinel only a relayed IsSentinel fact can identify.
var Torn = errors.New("durable: torn page")
`)
	writeFile(t, mod, "app/app.go", `package app

import (
	"errors"

	"scratch/durable"
)

func Classify(err error) int {
	if err == durable.ErrTorn { // heuristic catch
		return 1
	}
	if err != durable.Torn { // fact-only catch
		return 2
	}
	if errors.Is(err, durable.Torn) { // approved form
		return 3
	}
	return 0
}
`)

	vet := exec.Command(goTool, "vet", "-vettool="+vettool, "./...")
	vet.Dir = mod
	vet.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=")
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed; want errsentinel diagnostics\n%s", out)
	}
	text := string(out)
	for _, want := range []string{
		"== compares sentinel ErrTorn by identity",
		"!= compares sentinel Torn by identity",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("vet output missing %q", want)
		}
	}
	if strings.Contains(text, "app.go:16") {
		t.Errorf("vet flagged the approved errors.Is form on line 16:\n%s", text)
	}
	if t.Failed() {
		t.Logf("full vet output:\n%s", text)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not at %s: %v", root, err)
	}
	return root
}

func writeFile(t *testing.T, dir, rel, content string) {
	t.Helper()
	path := filepath.Join(dir, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

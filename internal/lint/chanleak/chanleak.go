// Package chanleak flags goroutines in the serving stack that send on
// an unbuffered channel with no escape path. The shape
//
//	done := make(chan T)
//	go func() { ...; done <- result }()
//
// leaks the goroutine (and whatever it pins) forever the moment the
// receiver stops listening — a timed-out HTTP handler, an SSE client
// that disconnected, a drain that gave up. The serving/durability
// packages (serve, durable, client) are full of exactly this
// hand-off topology, and the sanctioned patterns are already in use
// there: a buffered channel sized for the worst case, `close(ch)`
// instead of a send, or a send wrapped in a select with a ctx.Done()
// or default escape. The rule flags any send inside a go-statement
// function literal whose channel is provably an unbuffered make(chan)
// from the enclosing function, unless the send sits in a select with
// an escape clause.
//
// A justified `//cdcsvet:ignore chanleak -- why` escape is honored:
// the analysis is intra-procedural and cannot see a receiver that is
// structurally guaranteed to outlive the goroutine.
package chanleak

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the chanleak check.
var Analyzer = &analysis.Analyzer{
	Name:        "chanleak",
	Doc:         "flags goroutine sends on unbuffered local channels without a select escape in serve/durable/client; blocked sends leak the goroutine",
	Run:         run,
	AllowIgnore: true,
}

// audited is the serving/durability stack: the packages whose
// goroutines outlive requests and must be shutdown-safe.
var audited = map[string]bool{
	"serve":   true,
	"durable": true,
	"client":  true,
}

func run(pass *analysis.Pass) error {
	if !audited[analysis.BaseName(pass.Path)] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc scans one function body: it maps the body's unbuffered
// make(chan) variables, then audits every go-statement literal's
// sends against them.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	unbuffered := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if isUnbufferedMake(pass, rhs) {
					if obj := pass.TypesInfo.Defs[id]; obj != nil {
						unbuffered[obj] = true
					} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
						unbuffered[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if i >= len(n.Names) {
					break
				}
				if isUnbufferedMake(pass, v) {
					if obj := pass.TypesInfo.Defs[n.Names[i]]; obj != nil {
						unbuffered[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(unbuffered) == 0 {
		return
	}

	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		checkGoroutine(pass, lit.Body, unbuffered)
		return true
	})
}

// checkGoroutine flags unescaped sends on the enclosing function's
// unbuffered channels inside one goroutine body.
func checkGoroutine(pass *analysis.Pass, body *ast.BlockStmt, unbuffered map[types.Object]bool) {
	// Sends that appear as the comm clause of a select with an escape
	// (a default, or any second clause to fall through to) are safe.
	safe := map[*ast.SendStmt]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		if len(sel.Body.List) < 2 {
			return true // single-clause select == bare send
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					safe[send] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok || safe[send] {
			return true
		}
		id, ok := send.Chan.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !unbuffered[obj] {
			return true
		}
		pass.Reportf(send.Pos(),
			"goroutine sends on unbuffered channel %s with no select escape; if the receiver is gone the goroutine leaks — buffer the channel, close it, or select on ctx.Done()/default (chanleak)",
			id.Name)
		return true
	})
}

// isUnbufferedMake reports whether e is make(chan T) with no capacity
// or a constant-zero capacity.
func isUnbufferedMake(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "make" {
		return false
	}
	if _, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); !ok {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	if _, ok := pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(*types.Chan); !ok {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	tv := pass.TypesInfo.Types[call.Args[1]]
	return tv.Value != nil && tv.Value.String() == "0"
}

// Package other is outside the audited serving stack; the same leaky
// shape is not flagged here.
package other

func handoff(work func() int) int {
	done := make(chan int)
	go func() {
		done <- work()
	}()
	return <-done
}

// Package serve is the chanleak fixture: goroutine/channel hand-off
// shapes from the serving stack, flagged and sanctioned.
package serve

import "context"

// Flagged: classic leak — if the receiver times out and leaves, the
// goroutine blocks on the send forever.
func leakyHandoff(work func() int) int {
	done := make(chan int)
	go func() {
		done <- work() // want `goroutine sends on unbuffered channel done with no select escape`
	}()
	return <-done
}

// Flagged: var-declared channel, send buried in a loop.
func leakyLoop(items []int) {
	var results chan int = make(chan int)
	go func() {
		for _, it := range items {
			results <- it // want `goroutine sends on unbuffered channel results with no select escape`
		}
	}()
	_ = <-results
}

// Allowed: buffered channel sized for the hand-off.
func bufferedHandoff(work func() int) int {
	done := make(chan int, 1)
	go func() {
		done <- work()
	}()
	return <-done
}

// Allowed: close instead of send — the Drain pattern.
func closeSignal(wait func()) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		wait()
		close(done)
	}()
	return done
}

// Allowed: select with a ctx.Done() escape.
func ctxEscape(ctx context.Context, work func() int) int {
	done := make(chan int)
	go func() {
		select {
		case done <- work():
		case <-ctx.Done():
		}
	}()
	select {
	case v := <-done:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Allowed: select with a default escape (drop-oldest publish shape).
func defaultEscape(events chan int, v int) {
	go func() {
		select {
		case events <- v:
		default:
		}
	}()
}

// Flagged: a single-clause select is just a dressed-up bare send.
func fakeEscape(work func() int) int {
	done := make(chan int)
	go func() {
		select {
		case done <- work(): // want `goroutine sends on unbuffered channel done with no select escape`
		}
	}()
	return <-done
}

// Allowed: the channel is a parameter — buffering unknown, so the
// analyzer stays quiet rather than guess.
func paramChannel(out chan int, v int) {
	go func() {
		out <- v
	}()
}

// Allowed via reviewed escape: the receiver below provably drains.
func ignored(work func() int) int {
	done := make(chan int)
	go func() {
		//cdcsvet:ignore chanleak -- the sole receiver below never returns before draining
		done <- work()
	}()
	return <-done
}

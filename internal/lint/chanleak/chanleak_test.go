package chanleak_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/chanleak"
)

func TestChanLeak(t *testing.T) {
	analysistest.Run(t, "testdata", chanleak.Analyzer, "serve", "other")
}

package analysis

import (
	"encoding/gob"
	"testing"
)

// markFact is a minimal fact carrying a payload, so the round trip
// proves values (not just presence) survive the wire.
type markFact struct{ Note string }

func (*markFact) AFact()           {}
func (f *markFact) String() string { return "mark(" + f.Note + ")" }

func init() { gob.Register(new(markFact)) }

func TestFactsRoundTrip(t *testing.T) {
	src := NewFacts()
	src.Set("repro/internal/durable", "ErrClosed", &markFact{Note: "sentinel"})
	src.Set("repro/internal/durable", "Torn", &markFact{Note: "torn"})
	src.Set("repro/internal/serve", "TierShed", &markFact{Note: "tier"})

	data, err := src.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(data) == 0 {
		t.Fatalf("Encode returned no bytes for a non-empty store")
	}

	dst := NewFacts()
	if err := dst.Decode(data); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	var got markFact
	if !dst.Get("repro/internal/durable", "ErrClosed", &got) {
		t.Fatalf("fact for ErrClosed did not survive the round trip")
	}
	if got.Note != "sentinel" {
		t.Errorf("fact payload = %q, want %q", got.Note, "sentinel")
	}
	if all := dst.All(); len(all) != 3 {
		t.Errorf("decoded store has %d facts, want 3: %v", len(all), all)
	}
}

// TestFactsMergeAcrossDecodes mirrors the unitchecker's transitive
// relay: two dependency vetx payloads decode into one store, and the
// merged store re-encodes with both.
func TestFactsMergeAcrossDecodes(t *testing.T) {
	a := NewFacts()
	a.Set("p/a", "X", &markFact{Note: "a"})
	b := NewFacts()
	b.Set("p/b", "Y", &markFact{Note: "b"})
	dataA, err := a.Encode()
	if err != nil {
		t.Fatalf("Encode a: %v", err)
	}
	dataB, err := b.Encode()
	if err != nil {
		t.Fatalf("Encode b: %v", err)
	}

	merged := NewFacts()
	for _, data := range [][]byte{dataA, dataB, nil} { // nil: the empty-vetx path
		if err := merged.Decode(data); err != nil {
			t.Fatalf("Decode: %v", err)
		}
	}
	if len(merged.All()) != 2 {
		t.Fatalf("merged store = %v, want 2 facts", merged.All())
	}
	again, err := merged.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	third := NewFacts()
	if err := third.Decode(again); err != nil {
		t.Fatalf("re-Decode: %v", err)
	}
	var got markFact
	if !third.Get("p/a", "X", &got) || got.Note != "a" {
		t.Errorf("transitively relayed fact p/a.X lost or corrupted: %v", third.All())
	}
}

// TestFactsTestVariantNormalization: facts exported while analyzing a
// test-augmented package variant must match imports of the plain path.
func TestFactsTestVariantNormalization(t *testing.T) {
	f := NewFacts()
	f.Set("repro/internal/serve [repro/internal/serve.test]", "ErrX", &markFact{Note: "n"})
	var got markFact
	if !f.Get("repro/internal/serve", "ErrX", &got) {
		t.Fatalf("test-variant path was not normalized on Set")
	}
	if !f.Get("repro/internal/serve [other.test]", "ErrX", &got) {
		t.Fatalf("test-variant path was not normalized on Get")
	}
}

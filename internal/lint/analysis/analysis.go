// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis API: just enough surface — Analyzer,
// Pass, Diagnostic — for the cdcsvet analyzers to be written in the
// standard shape without pulling the x/tools module into the build.
//
// The container this repo builds in has no module proxy access, so the
// usual `multichecker` + `analysistest` stack is off the table; the
// sibling packages reimplement the thin slices of it the suite needs
// (internal/lint/load, internal/lint/analysistest, and the vet-protocol
// driver under cmd/cdcsvet). Analyzers written against this package use
// the same Run(*Pass) contract as upstream, so they can migrate to
// x/tools unchanged if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI selection.
	Name string
	// Doc is the one-paragraph description shown by `cdcsvet help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information through an
// analyzer run.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files.
	Fset *token.FileSet
	// Files is the package's parsed syntax (tests excluded or included
	// per driver; analyzers consult IsTestFile when it matters).
	Files []*ast.File
	// Path is the package's import path as the driver resolved it.
	Path string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and uses for expressions in Files.
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	// Pos anchors the finding.
	Pos token.Pos
	// Analyzer names the check that produced it.
	Analyzer string
	// Message states the violation.
	Message string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Package is the loaded unit a driver hands to Run.
type Package struct {
	// Path is the import path.
	Path string
	// Fset maps positions.
	Fset *token.FileSet
	// Files is the parsed syntax.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the collected type information.
	Info *types.Info
}

// Run applies each analyzer to the package and returns all diagnostics
// in position order.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Path:      pkg.Path,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		out = append(out, pass.diagnostics...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// Inspect walks every file of the pass in depth-first order, calling f
// for each node; f returning false prunes the subtree.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// BaseName returns the last path element of an import path: the
// analyzers scope their audits by package base name so the same rule
// applies to repro/internal/ucp in the real tree and to testdata/src/ucp
// in their analysistest fixtures.
func BaseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis API: just enough surface — Analyzer,
// Pass, Diagnostic — for the cdcsvet analyzers to be written in the
// standard shape without pulling the x/tools module into the build.
//
// The container this repo builds in has no module proxy access, so the
// usual `multichecker` + `analysistest` stack is off the table; the
// sibling packages reimplement the thin slices of it the suite needs
// (internal/lint/load, internal/lint/analysistest, and the vet-protocol
// driver under cmd/cdcsvet). Analyzers written against this package use
// the same Run(*Pass) contract as upstream, so they can migrate to
// x/tools unchanged if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI selection.
	Name string
	// Doc is the one-paragraph description shown by `cdcsvet help`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// FactTypes lists a prototype pointer per fact type the analyzer
	// exports or imports (e.g. new(IsSentinel)). A non-nil list also
	// marks the analyzer as one the drivers must run on
	// dependency-only units so its facts reach importing packages.
	FactTypes []Fact
	// AllowIgnore opts the analyzer into the
	// `//cdcsvet:ignore <name> -- <justification>` escape comment.
	// The original four analyzers keep the no-suppression policy
	// (docs/LINT.md); the concurrency-invariant analyzers allow a
	// justified escape because their intra-procedural approximations
	// can be wrong about code a human has reviewed.
	AllowIgnore bool
}

// Pass carries one package's syntax and type information through an
// analyzer run.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps token positions of Files.
	Fset *token.FileSet
	// Files is the package's parsed syntax (tests excluded or included
	// per driver; analyzers consult IsTestFile when it matters).
	Files []*ast.File
	// Path is the package's import path as the driver resolved it.
	Path string
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records types and uses for expressions in Files.
	TypesInfo *types.Info

	facts       *Facts
	diagnostics []Diagnostic
	ignores     map[string]bool // "file:line" suppressed for this analyzer (lazily built)
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	// Pos anchors the finding.
	Pos token.Pos
	// Analyzer names the check that produced it.
	Analyzer string
	// Message states the violation.
	Message string
}

// Reportf records a diagnostic at pos. For analyzers with AllowIgnore,
// a `//cdcsvet:ignore <name> -- <justification>` comment on the same
// line or the line above suppresses it; the justification is
// mandatory — an ignore without one does not suppress.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Analyzer.AllowIgnore && p.ignored(pos) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ignorePrefix opens the escape comment; the full grammar is
// `//cdcsvet:ignore <analyzer> -- <justification>`.
const ignorePrefix = "//cdcsvet:ignore "

// ignored reports whether pos is covered by an escape comment for this
// analyzer, building the per-pass suppression set on first use.
func (p *Pass) ignored(pos token.Pos) bool {
	if p.ignores == nil {
		p.ignores = map[string]bool{}
		for _, file := range p.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
					if !ok {
						continue
					}
					name, just, ok := strings.Cut(rest, "--")
					if !ok || strings.TrimSpace(name) != p.Analyzer.Name || strings.TrimSpace(just) == "" {
						continue
					}
					cp := p.Fset.Position(c.Pos())
					// Cover the comment's own line (trailing form) and
					// the next line (standalone form above the code).
					p.ignores[fmt.Sprintf("%s:%d", cp.Filename, cp.Line)] = true
					p.ignores[fmt.Sprintf("%s:%d", cp.Filename, cp.Line+1)] = true
				}
			}
		}
	}
	dp := p.Fset.Position(pos)
	return p.ignores[fmt.Sprintf("%s:%d", dp.Filename, dp.Line)]
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Package is the loaded unit a driver hands to Run.
type Package struct {
	// Path is the import path.
	Path string
	// Fset maps positions.
	Fset *token.FileSet
	// Files is the parsed syntax.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info is the collected type information.
	Info *types.Info
}

// Result is one package's analysis outcome: its diagnostics plus the
// fact store the run read from and wrote into.
type Result struct {
	// Diagnostics is every finding, in position order.
	Diagnostics []Diagnostic
	// Facts is the shared store after the run — imported facts plus
	// whatever the analyzers exported for this package.
	Facts *Facts
}

// Run applies each analyzer to the package and returns all diagnostics
// in position order. Facts flow within the run (an analyzer sees the
// facts it exported for the package's own objects) but are discarded
// afterwards; drivers that propagate facts across packages use
// RunPackage with a shared store.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := RunPackage(pkg, analyzers, NewFacts())
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

// RunPackage applies each analyzer to the package with facts as the
// cross-package store: analyzers import facts that earlier runs (over
// dependency packages) put there and export new ones for this
// package's objects.
func RunPackage(pkg *Package, analyzers []*Analyzer, facts *Facts) (*Result, error) {
	if facts == nil {
		facts = NewFacts()
	}
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Path:      pkg.Path,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			facts:     facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		out = append(out, pass.diagnostics...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return &Result{Diagnostics: out, Facts: facts}, nil
}

// Inspect walks every file of the pass in depth-first order, calling f
// for each node; f returning false prunes the subtree.
func (p *Pass) Inspect(f func(ast.Node) bool) {
	for _, file := range p.Files {
		ast.Inspect(file, f)
	}
}

// BaseName returns the last path element of an import path: the
// analyzers scope their audits by package base name so the same rule
// applies to repro/internal/ucp in the real tree and to testdata/src/ucp
// in their analysistest fixtures.
func BaseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Facts: the cross-package side-channel of the analysis framework.
//
// An analyzer that declares FactTypes can attach a Fact to any
// package-level object of the package under analysis; when a
// downstream package is analyzed — in the same process (load.Runner)
// or in a later `go vet` tool invocation (unitchecker) — the fact is
// visible through ImportObjectFact on the imported object. The wire
// format is encoding/gob, the same choice x/tools made: facts must
// survive being written to the vetx file cmd/go threads between
// compilation units.
//
// The store keys facts by (package path, object name, concrete fact
// type). Only package-level objects can carry facts — that is the only
// granularity that survives export data, and the only one the suite
// needs (sentinel error variables). Package paths are normalized by
// stripping cmd/go's " [pkg.test]" test-variant suffix so a fact
// exported while vetting the test-augmented variant of a package still
// matches imports of the plain path.
package analysis

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"go/types"
	"io"
	"reflect"
	"sort"
	"strings"
)

// A Fact is a serializable message attached to a package-level object
// by one analyzer run and consumed by runs over importing packages.
// Implementations must be pointers to gob-encodable structs; the AFact
// method is a marker. Implementing fmt.Stringer is recommended — the
// analysistest fact assertions match against fmt.Sprint(fact).
type Fact interface {
	// AFact marks the type as a fact; it is never called.
	AFact()
}

// ObjectFact is one (object, fact) pair as stored or enumerated.
type ObjectFact struct {
	// PkgPath is the normalized import path of the declaring package.
	PkgPath string
	// Object is the package-level object's name.
	Object string
	// Fact is the attached fact.
	Fact Fact
}

type factKey struct {
	pkg string
	obj string
	typ reflect.Type
}

// Facts is a fact store shared across the packages of one analysis
// session: imported facts are merged in, exported facts are added, and
// the union is what a driver serializes for downstream units.
type Facts struct {
	m map[factKey]Fact
}

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: map[factKey]Fact{}} }

// normPath strips cmd/go's test-variant suffix from an import path:
// "repro/internal/serve [repro/internal/serve.test]" and the plain
// "repro/internal/serve" are the same package for fact purposes.
func normPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// Set records fact for the named object of pkgPath, replacing any
// existing fact of the same concrete type.
func (f *Facts) Set(pkgPath, object string, fact Fact) {
	f.m[factKey{normPath(pkgPath), object, reflect.TypeOf(fact)}] = fact
}

// Get loads the fact of ptr's concrete type attached to the named
// object into *ptr and reports whether one was found.
func (f *Facts) Get(pkgPath, object string, ptr Fact) bool {
	fact, ok := f.m[factKey{normPath(pkgPath), object, reflect.TypeOf(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(fact).Elem())
	return true
}

// All enumerates the store in deterministic (path, object, type name)
// order.
func (f *Facts) All() []ObjectFact {
	out := make([]ObjectFact, 0, len(f.m))
	for k, v := range f.m {
		out = append(out, ObjectFact{PkgPath: k.pkg, Object: k.obj, Fact: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PkgPath != out[j].PkgPath {
			return out[i].PkgPath < out[j].PkgPath
		}
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return reflect.TypeOf(out[i].Fact).String() < reflect.TypeOf(out[j].Fact).String()
	})
	return out
}

// wireFact is the gob envelope for one stored fact. The Fact field is
// an interface value, so every concrete fact type must be registered
// with gob before Encode/Decode — RegisterFactTypes does that from the
// analyzers' FactTypes declarations.
type wireFact struct {
	PkgPath string
	Object  string
	Fact    Fact
}

// Encode serializes the store for a vetx file. The output is
// deterministic (All's order), so cmd/go's content-hashed caching of
// vetx files is stable.
func (f *Facts) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, of := range f.All() {
		if err := enc.Encode(wireFact{of.PkgPath, of.Object, of.Fact}); err != nil {
			return nil, fmt.Errorf("encoding fact %s.%s: %w", of.PkgPath, of.Object, err)
		}
	}
	return buf.Bytes(), nil
}

// Decode merges the facts serialized in data (a vetx file's contents)
// into the store. Empty input is a valid empty store — that is what
// the driver writes for units it could not analyze.
func (f *Facts) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	dec := gob.NewDecoder(bytes.NewReader(data))
	for {
		var wf wireFact
		if err := dec.Decode(&wf); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("decoding facts: %w", err)
		}
		f.Set(wf.PkgPath, wf.Object, wf.Fact)
	}
}

// RegisterFactTypes registers every FactTypes prototype of the given
// analyzers with gob. Drivers must call it once before any
// Encode/Decode; registering the same type repeatedly is harmless.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, proto := range a.FactTypes {
			gob.Register(proto)
		}
	}
}

// ExportObjectFact attaches fact to obj, which must be a package-level
// object of the package under analysis. The analyzer must list fact's
// concrete type in its FactTypes.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	p.facts.Set(obj.Pkg().Path(), obj.Name(), fact)
}

// ImportObjectFact loads the fact of ptr's concrete type attached to
// obj (by any earlier analysis of obj's package, this one included)
// into *ptr and reports whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	return p.facts.Get(obj.Pkg().Path(), obj.Name(), ptr)
}

// AllObjectFacts enumerates every fact visible to the pass.
func (p *Pass) AllObjectFacts() []ObjectFact {
	if p.facts == nil {
		return nil
	}
	return p.facts.All()
}

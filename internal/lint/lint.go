// Package lint assembles the cdcsvet analyzer suite: the seven
// domain-specific checks that encode CDCS correctness invariants the
// type system cannot express — four from the original suite plus the
// concurrency-invariant analyzers over the serving/durability stack.
// See docs/LINT.md for the full rationale of each rule and its
// relation to the paper's exactness claims.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/chanleak"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/errsentinel"
	"repro/internal/lint/floatcmp"
	"repro/internal/lint/implmut"
	"repro/internal/lint/lockorder"
	"repro/internal/lint/mapiter"
)

// Analyzers returns the full cdcsvet suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		chanleak.Analyzer,
		ctxflow.Analyzer,
		errsentinel.Analyzer,
		floatcmp.Analyzer,
		implmut.Analyzer,
		lockorder.Analyzer,
		mapiter.Analyzer,
	}
}

// Package analysistest runs an analyzer over a testdata fixture tree
// and checks its diagnostics against `// want` comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract without the
// dependency.
//
// Layout: <analyzer dir>/testdata/src/<pkg>/*.go. A line that should be
// flagged carries a trailing comment
//
//	// want `regexp`
//
// (double-quoted strings work too; several literals on one line demand
// several diagnostics on that line, matched in order). A fixture line
// with no want comment must produce no diagnostic.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Run loads each named package from dir/src and applies the analyzer,
// failing t on any mismatch between diagnostics and want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root := filepath.Join(dir, "src")
	loader := load.New(root, "")
	for _, pkg := range pkgs {
		pkgDir := filepath.Join(root, pkg)
		loaded, err := loader.LoadDir(pkgDir)
		if err != nil {
			t.Errorf("%s: loading %s: %v", a.Name, pkg, err)
			continue
		}
		diags, err := analysis.Run(&analysis.Package{
			Path:  loaded.Path,
			Fset:  loaded.Fset,
			Files: loaded.Files,
			Types: loaded.Types,
			Info:  loaded.Info,
		}, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: running on %s: %v", a.Name, pkg, err)
			continue
		}
		wants, err := collectWants(loaded.Fset, loaded)
		if err != nil {
			t.Errorf("%s: %s: %v", a.Name, pkg, err)
			continue
		}
		check(t, a.Name, loaded.Fset, diags, wants)
	}
}

// want is one expectation parsed from a `// want` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func collectWants(fset *token.FileSet, pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				exprs, err := splitLiterals(strings.TrimSpace(text))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, e := range exprs {
					re, err := regexp.Compile(e)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, e, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: e})
				}
			}
		}
	}
	return wants, nil
}

// splitLiterals parses a sequence of Go string literals.
func splitLiterals(s string) ([]string, error) {
	var out []string
	for s != "" {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			break
		}
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string")
			}
			out = append(out, s[1:1+end])
			s = s[end+2:]
		case '"':
			// Find the closing quote, honoring escapes.
			i := 1
			for ; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					break
				}
			}
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated string")
			}
			lit, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return nil, err
			}
			out = append(out, lit)
			s = s[i+1:]
		default:
			return nil, fmt.Errorf("expected string literal at %q", s)
		}
	}
	return out, nil
}

func check(t *testing.T, name string, fset *token.FileSet, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	// Group wants by (file, line) preserving order for in-order matching.
	byLine := map[string][]*want{}
	for _, w := range wants {
		k := fmt.Sprintf("%s:%d", w.file, w.line)
		byLine[k] = append(byLine[k], w)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range byLine[k] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", name, pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: missing diagnostic at %s:%d matching %q", name, w.file, w.line, w.raw)
		}
	}
}

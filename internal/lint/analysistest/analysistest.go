// Package analysistest runs an analyzer over a testdata fixture tree
// and checks its diagnostics against `// want` comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract without the
// dependency.
//
// Layout: <analyzer dir>/testdata/src/<pkg>/*.go. A line that should be
// flagged carries a trailing comment
//
//	// want `regexp`
//
// (double-quoted strings work too; several literals on one line demand
// several diagnostics on that line, matched in order). A fixture line
// with no want comment must produce no diagnostic.
//
// Facts use the upstream syntax: a declaration line expecting an
// exported fact carries
//
//	// want Name:`regexp`
//
// where Name is the declared package-level object and the regexp must
// match fmt.Sprint of the fact attached to it. Every fact an analyzer
// exports for a checked package must be asserted — an unasserted fact
// fails the test, so fixtures document the analyzer's full output.
// Packages are analyzed with one shared fact store in dependency
// order, so a fixture package may import a sibling fixture package and
// observe its facts — the cross-package testdata layout.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Run loads each named package from dir/src and applies the analyzer
// (dependency fixture packages first, sharing one fact store), failing
// t on any mismatch between diagnostics/facts and want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root := filepath.Join(dir, "src")
	loader := load.New(root, "")
	runner := load.NewRunner(loader, []*analysis.Analyzer{a})
	for _, pkg := range pkgs {
		pkgDir := filepath.Join(root, pkg)
		loaded, err := loader.LoadDir(pkgDir)
		if err != nil {
			t.Errorf("%s: loading %s: %v", a.Name, pkg, err)
			continue
		}
		res, err := runner.Analyze(loaded)
		if err != nil {
			t.Errorf("%s: running on %s: %v", a.Name, pkg, err)
			continue
		}
		wants, err := collectWants(loaded.Fset, loaded)
		if err != nil {
			t.Errorf("%s: %s: %v", a.Name, pkg, err)
			continue
		}
		check(t, a.Name, loaded.Fset, res.Diagnostics, wants)
		checkFacts(t, a.Name, loaded, res.Facts, wants)
	}
}

// want is one expectation parsed from a `// want` comment: a
// diagnostic when object is empty, an exported fact otherwise.
type want struct {
	file   string
	line   int
	object string
	re     *regexp.Regexp
	raw    string
	hit    bool
}

func collectWants(fset *token.FileSet, pkg *analysis.Package) ([]*want, error) {
	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				exprs, err := splitWants(strings.TrimSpace(text))
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, e := range exprs {
					re, err := regexp.Compile(e.expr)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, e.expr, err)
					}
					wants = append(wants, &want{
						file: pos.Filename, line: pos.Line,
						object: e.object, re: re, raw: e.expr,
					})
				}
			}
		}
	}
	return wants, nil
}

// wantExpr is one token of a want comment before regexp compilation.
type wantExpr struct {
	object string // "" for a diagnostic expectation
	expr   string
}

// splitWants parses a sequence of `literal` and `Name:literal` tokens.
func splitWants(s string) ([]wantExpr, error) {
	var out []wantExpr
	for s != "" {
		s = strings.TrimLeft(s, " \t")
		if s == "" {
			break
		}
		var object string
		if s[0] != '`' && s[0] != '"' {
			// Fact form: identifier up to the colon, then a literal.
			i := strings.IndexByte(s, ':')
			if i <= 0 {
				return nil, fmt.Errorf("expected string literal or Name:literal at %q", s)
			}
			object = s[:i]
			s = s[i+1:]
			if s == "" || (s[0] != '`' && s[0] != '"') {
				return nil, fmt.Errorf("expected string literal after %q:", object)
			}
		}
		lit, rest, err := cutLiteral(s)
		if err != nil {
			return nil, err
		}
		out = append(out, wantExpr{object: object, expr: lit})
		s = rest
	}
	return out, nil
}

// cutLiteral parses one Go string literal off the front of s.
func cutLiteral(s string) (lit, rest string, err error) {
	switch s[0] {
	case '`':
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated raw string")
		}
		return s[1 : 1+end], s[end+2:], nil
	case '"':
		// Find the closing quote, honoring escapes.
		i := 1
		for ; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				break
			}
		}
		if i >= len(s) {
			return "", "", fmt.Errorf("unterminated string")
		}
		lit, err := strconv.Unquote(s[:i+1])
		if err != nil {
			return "", "", err
		}
		return lit, s[i+1:], nil
	default:
		return "", "", fmt.Errorf("expected string literal at %q", s)
	}
}

func check(t *testing.T, name string, fset *token.FileSet, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	// Group wants by (file, line) preserving order for in-order matching.
	byLine := map[string][]*want{}
	for _, w := range wants {
		if w.object != "" {
			continue
		}
		k := fmt.Sprintf("%s:%d", w.file, w.line)
		byLine[k] = append(byLine[k], w)
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, w := range byLine[k] {
			if !w.hit && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", name, pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if w.object == "" && !w.hit {
			t.Errorf("%s: missing diagnostic at %s:%d matching %q", name, w.file, w.line, w.raw)
		}
	}
}

// checkFacts matches the facts exported for pkg's own objects against
// the fact-form wants, both directions.
func checkFacts(t *testing.T, name string, pkg *analysis.Package, facts *analysis.Facts, wants []*want) {
	t.Helper()
	for _, of := range facts.All() {
		if of.PkgPath != pkg.Path {
			continue // a dependency's fact; asserted when that package is checked
		}
		text := fmt.Sprint(of.Fact)
		obj := pkg.Types.Scope().Lookup(of.Object)
		if obj == nil {
			t.Errorf("%s: fact %q exported for unknown object %s.%s", name, text, of.PkgPath, of.Object)
			continue
		}
		pos := pkg.Fset.Position(obj.Pos())
		matched := false
		for _, w := range wants {
			if w.hit || w.object != of.Object || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(text) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected fact at %s:%d: %s:%q", name, pos.Filename, pos.Line, of.Object, text)
		}
	}
	for _, w := range wants {
		if w.object != "" && !w.hit {
			t.Errorf("%s: missing fact at %s:%d: %s matching %q", name, w.file, w.line, w.object, w.raw)
		}
	}
}

package merging_test

// Empirical probe of Theorem 3.1's reach under the two-hub (mux →
// trunk → demux) merging realization.
//
// Finding: a strictly profitable triple does NOT always contain a
// cost-neutral pair under this realization — a pair merge pays the full
// trunk-weight (equal to its two branches) plus access detours, while a
// triple amortizes the trunk over three branches. The paper's own WAN
// instance sits exactly on the boundary (its pairs are gain-zero), and
// random instances fall strictly below it.
//
// This is precisely why the enumeration in this package does NOT grow
// candidates hierarchically (requiring every sub-subset to be a
// candidate): it enumerates all subsets of the still-active arcs, and
// Theorem 3.1 elimination is driven by the *geometric lemma* tests —
// whose monotonicity is provable — never by pricing outcomes. The test
// below validates the guarantee the flow actually relies on: every
// strictly profitable triple survives lemma pruning and is present in
// the candidate set.

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/p2p"
	"repro/internal/place"
)

func TestProfitableTriplesSurviveLemmaPruning(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	lib := soundnessLib()
	profitableTriples := 0
	strictPairLoss := 0

	for trial := 0; trial < 60; trial++ {
		// Clustered instances so profitable triples actually occur.
		cg := model.NewConstraintGraph(geom.Euclidean)
		for i := 0; i < 4; i++ {
			u := cg.MustAddPort(model.Port{
				Name:     "u" + string(rune('0'+i)),
				Position: geom.Pt(r.Float64()*6, r.Float64()*6),
			})
			v := cg.MustAddPort(model.Port{
				Name:     "v" + string(rune('0'+i)),
				Position: geom.Pt(90+r.Float64()*10, r.Float64()*10),
			})
			cg.MustAddChannel(model.Channel{
				Name: "a" + string(rune('0'+i)), From: u, To: v,
				Bandwidth: 2 + r.Float64()*8,
			})
		}
		p2pCost := make([]float64, 4)
		for i := 0; i < 4; i++ {
			ch := model.ChannelID(i)
			plan, err := p2p.BestPlan(cg.Distance(ch), cg.Bandwidth(ch), lib, p2p.Options{})
			if err != nil {
				t.Fatal(err)
			}
			p2pCost[i] = plan.Cost
		}
		mergeCost := func(ids []model.ChannelID) (float64, bool) {
			cand, err := place.Optimize(cg, lib, ids, place.Options{})
			if err != nil {
				return 0, false
			}
			return cand.Cost, true
		}
		// Enumerate candidates under both reference policies.
		strict, err := merging.Enumerate(cg, lib, merging.Options{Policy: merging.AnyRef})
		if err != nil {
			t.Fatal(err)
		}
		inCandidates := func(ids []model.ChannelID) bool {
			for _, set := range strict.ByK[len(ids)] {
				match := true
				for i := range set {
					if set[i] != ids[i] {
						match = false
						break
					}
				}
				if match {
					return true
				}
			}
			return false
		}

		for x := 0; x < 4; x++ {
			for y := x + 1; y < 4; y++ {
				for z := y + 1; z < 4; z++ {
					ids := []model.ChannelID{model.ChannelID(x), model.ChannelID(y), model.ChannelID(z)}
					cost, ok := mergeCost(ids)
					alt := p2pCost[x] + p2pCost[y] + p2pCost[z]
					if !ok || cost >= alt-1e-6*alt {
						continue // not strictly profitable
					}
					profitableTriples++
					// The guarantee the flow relies on: the profitable
					// triple must be in the candidate set even under the
					// strongest sound pruning.
					if !inCandidates(ids) {
						t.Fatalf("trial %d: profitable triple %v pruned away (cost %v < p2p %v)",
							trial, ids, cost, alt)
					}
					// Document the structural finding: count triples
					// where some member has only strictly-losing pairs.
					for _, a := range ids {
						neutral := false
						for _, b := range ids {
							if a == b {
								continue
							}
							pc, ok := mergeCost([]model.ChannelID{a, b})
							if ok && pc <= p2pCost[a]+p2pCost[b]+1e-3*(p2pCost[a]+p2pCost[b]) {
								neutral = true
								break
							}
						}
						if !neutral {
							strictPairLoss++
							break
						}
					}
				}
			}
		}
	}
	if profitableTriples < 10 {
		t.Fatalf("only %d profitable triples sampled; broaden the generator", profitableTriples)
	}
	// The structural finding must actually manifest, otherwise this test
	// degrades into documentation of nothing.
	if strictPairLoss == 0 {
		t.Error("expected at least one profitable triple whose pairs all lose strictly")
	}
	t.Logf("profitable triples: %d, of which %d have a member with only strictly-losing pairs",
		profitableTriples, strictPairLoss)
}

package merging

import (
	"context"
	"errors"
	"testing"
)

// TestEnumerateCapTruncate: under CapTruncate the enumeration stops at
// the cap without an error, keeps exactly the first cap candidates (in
// enumeration order), and marks the result truncated.
func TestEnumerateCapTruncate(t *testing.T) {
	cg := clusterInstance(t, 6)
	full, err := Enumerate(cg, testLib(), Options{Policy: MaxIndexRef})
	if err != nil {
		t.Fatal(err)
	}
	total := full.TotalCandidates()
	if total < 3 {
		t.Skipf("instance produced only %d candidates", total)
	}

	cap := total - 1
	res, err := Enumerate(cg, testLib(), Options{Policy: MaxIndexRef, MaxCandidates: cap, CapMode: CapTruncate})
	if err != nil {
		t.Fatalf("CapTruncate must not error: %v", err)
	}
	if !res.Truncated {
		t.Error("Truncated not set")
	}
	if res.Interrupted {
		t.Error("Interrupted set without a context deadline")
	}
	if got := res.TotalCandidates(); got != cap {
		t.Errorf("TotalCandidates=%d, want cap %d", got, cap)
	}
	// Every kept candidate also appears in the full enumeration at the
	// same level (truncation keeps a prefix, never invents sets).
	for k, sets := range res.ByK {
		if len(sets) > len(full.ByK[k]) {
			t.Errorf("k=%d: truncated level has %d sets, full has %d", k, len(sets), len(full.ByK[k]))
		}
	}

	// Cap equal to the total marks Truncated but loses nothing.
	exact, err := Enumerate(cg, testLib(), Options{Policy: MaxIndexRef, MaxCandidates: total, CapMode: CapTruncate})
	if err != nil {
		t.Fatalf("CapTruncate at exact total: %v", err)
	}
	if got := exact.TotalCandidates(); got != total {
		t.Errorf("cap==total: TotalCandidates=%d, want %d", got, total)
	}
}

// TestEnumerateCapAbortSentinel: the default abort mode returns an error
// matching ErrCandidateCap via errors.Is.
func TestEnumerateCapAbortSentinel(t *testing.T) {
	cg := clusterInstance(t, 6)
	_, err := Enumerate(cg, testLib(), Options{Policy: MaxIndexRef, MaxCandidates: 1})
	if err == nil {
		t.Fatal("cap 1 in abort mode must error")
	}
	if !errors.Is(err, ErrCandidateCap) {
		t.Errorf("err = %v, want errors.Is(err, ErrCandidateCap)", err)
	}
}

// TestEnumerateContextCanceled: a dead context stops enumeration with
// Interrupted set and no error; the partial result is usable.
func TestEnumerateContextCanceled(t *testing.T) {
	cg := clusterInstance(t, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := EnumerateContext(ctx, cg, testLib(), Options{Policy: MaxIndexRef})
	if err != nil {
		t.Fatalf("canceled context must degrade, not error: %v", err)
	}
	if !res.Interrupted {
		t.Error("Interrupted not set on a dead context")
	}
	if res.Truncated {
		t.Error("Truncated set without a candidate cap")
	}
	// A pre-dead context is observed before any level runs.
	if got := res.TotalCandidates(); got != 0 {
		t.Errorf("TotalCandidates=%d, want 0 for a pre-dead context", got)
	}
}

package merging

import "math/bits"

// bitset is a fixed-capacity set of small non-negative integers backed
// by a flat word array. Enumeration uses two of them per run: the
// Theorem 3.1 live set (arcs still eligible for larger mergings) and
// the per-level in-candidate set. Membership, insertion and the
// level-end intersection are single-word operations, replacing the map
// surgery the pre-flattening implementation performed per level.
type bitset []uint64

// newBitset returns an empty set with capacity for values 0..n-1.
func newBitset(n int) bitset {
	return make(bitset, (n+63)/64)
}

// set inserts i.
func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// has reports whether i is in the set.
func (b bitset) has(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// count returns the number of elements.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// reset empties the set in place.
func (b bitset) reset() {
	for i := range b {
		b[i] = 0
	}
}

// fill inserts every value in 0..n-1.
func (b bitset) fill(n int) {
	b.reset()
	for i := 0; i < n; i++ {
		b.set(i)
	}
}

// intersect removes every element not also in other (b &= other).
func (b bitset) intersect(other bitset) {
	for i := range b {
		b[i] &= other[i]
	}
}

// appendMembers appends the set's elements to dst in ascending order
// and returns the extended slice. Iterating set bits word by word keeps
// the order identical to scanning 0..n-1, which is what pins the
// subset-enumeration order (and hence every gate-pinned counter) across
// the flat-representation refactor.
func (b bitset) appendMembers(dst []int) []int {
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

package merging_test

// Soundness of the pruning theory against the pricing oracle: whenever
// Lemma 3.1 / Lemma 3.2 declares a set of arcs not k-way mergeable, the
// actual optimized merged implementation (place.Optimize) must never
// beat the summed optimum point-to-point implementations. This is the
// operational content of Definition 3.1 — a pruned set's merging is
// dominated — checked on hundreds of random instances.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/library"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/p2p"
	"repro/internal/place"
)

func soundnessLib() *library.Library {
	return &library.Library{
		Links: []library.Link{
			{Name: "radio", Bandwidth: 11, MaxSpan: math.Inf(1), CostPerLength: 2},
			{Name: "optical", Bandwidth: 1000, MaxSpan: math.Inf(1), CostPerLength: 4},
		},
		Nodes: []library.Node{
			{Name: "mux", Kind: library.Mux, Cost: 0},
			{Name: "demux", Kind: library.Demux, Cost: 0},
		},
	}
}

func randomInstance(r *rand.Rand, nch int) *model.ConstraintGraph {
	cg := model.NewConstraintGraph(geom.Euclidean)
	for i := 0; i < nch; i++ {
		u := cg.MustAddPort(model.Port{
			Name:     "u" + string(rune('0'+i)),
			Position: geom.Pt(r.Float64()*120, r.Float64()*120),
		})
		v := cg.MustAddPort(model.Port{
			Name:     "v" + string(rune('0'+i)),
			Position: geom.Pt(r.Float64()*120, r.Float64()*120),
		})
		cg.MustAddChannel(model.Channel{
			Name: "a" + string(rune('0'+i)), From: u, To: v,
			Bandwidth: 2 + r.Float64()*9,
		})
	}
	return cg
}

// TestLemma31SoundAgainstPricing: pruned pairs never merge profitably.
func TestLemma31SoundAgainstPricing(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	lib := soundnessLib()
	prunedChecked := 0
	for trial := 0; trial < 120; trial++ {
		cg := randomInstance(r, 2)
		gamma := merging.Gamma(cg)
		delta := merging.Delta(cg)
		if !merging.NotMergeablePair(gamma, delta, 0, 1) {
			continue
		}
		prunedChecked++
		var p2pSum float64
		for i := 0; i < 2; i++ {
			ch := model.ChannelID(i)
			plan, err := p2p.BestPlan(cg.Distance(ch), cg.Bandwidth(ch), lib, p2p.Options{})
			if err != nil {
				t.Fatal(err)
			}
			p2pSum += plan.Cost
		}
		cand, err := place.Optimize(cg, lib, []model.ChannelID{0, 1}, place.Options{})
		if err != nil {
			continue // merging infeasible: trivially sound
		}
		if cand.Cost < p2pSum-1e-6*p2pSum {
			t.Fatalf("trial %d: pruned pair merged cheaper: %.6f < %.6f (Γ=%.3f Δ=%.3f)",
				trial, cand.Cost, p2pSum, gamma.At(0, 1), delta.At(0, 1))
		}
	}
	if prunedChecked < 30 {
		t.Fatalf("only %d pruned pairs sampled; broaden the generator", prunedChecked)
	}
}

// TestLemma32SoundAgainstPricing: k-sets pruned under any reference
// policy never merge profitably (k = 3, 4).
func TestLemma32SoundAgainstPricing(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	lib := soundnessLib()
	prunedChecked := 0
	for trial := 0; trial < 150; trial++ {
		nch := 3 + r.Intn(2)
		cg := randomInstance(r, nch)
		gamma := merging.Gamma(cg)
		delta := merging.Delta(cg)
		dist := make([]float64, nch)
		var set []int
		var ids []model.ChannelID
		for i := 0; i < nch; i++ {
			dist[i] = cg.Distance(model.ChannelID(i))
			set = append(set, i)
			ids = append(ids, model.ChannelID(i))
		}
		if !merging.NotMergeableSet(gamma, delta, set, merging.AnyRef, dist) {
			continue
		}
		prunedChecked++
		var p2pSum float64
		for _, ch := range ids {
			plan, err := p2p.BestPlan(cg.Distance(ch), cg.Bandwidth(ch), lib, p2p.Options{})
			if err != nil {
				t.Fatal(err)
			}
			p2pSum += plan.Cost
		}
		cand, err := place.Optimize(cg, lib, ids, place.Options{})
		if err != nil {
			continue
		}
		if cand.Cost < p2pSum-1e-6*p2pSum {
			t.Fatalf("trial %d: pruned %d-set merged cheaper: %.6f < %.6f",
				trial, nch, cand.Cost, p2pSum)
		}
	}
	if prunedChecked < 30 {
		t.Fatalf("only %d pruned sets sampled; broaden the generator", prunedChecked)
	}
}

// TestTheorem32SoundAgainstPricing: bandwidth-pruned sets are never
// profitable — with the sum trunk rule they are outright infeasible or
// dominated.
func TestTheorem32SoundAgainstPricing(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	// A library whose fastest link is barely above single-channel
	// demand, so Theorem 3.2 actually triggers.
	lib := &library.Library{
		Links: []library.Link{
			{Name: "thin", Bandwidth: 12, MaxSpan: math.Inf(1), CostPerLength: 2},
		},
		Nodes: []library.Node{
			{Name: "mux", Kind: library.Mux, Cost: 0},
			{Name: "demux", Kind: library.Demux, Cost: 0},
		},
	}
	prunedChecked := 0
	for trial := 0; trial < 80; trial++ {
		cg := randomInstance(r, 3)
		bw := merging.BandwidthVector(cg)
		set := []int{0, 1, 2}
		if !merging.NotMergeableBandwidth(bw, set, lib) {
			continue
		}
		prunedChecked++
		var p2pSum float64
		feasible := true
		for i := 0; i < 3; i++ {
			ch := model.ChannelID(i)
			plan, err := p2p.BestPlan(cg.Distance(ch), cg.Bandwidth(ch), lib, p2p.Options{})
			if err != nil {
				feasible = false
				break
			}
			p2pSum += plan.Cost
		}
		if !feasible {
			continue
		}
		cand, err := place.Optimize(cg, lib, []model.ChannelID{0, 1, 2}, place.Options{})
		if err != nil {
			continue // infeasible merging: sound
		}
		if cand.Cost < p2pSum-1e-6*p2pSum {
			t.Fatalf("trial %d: bandwidth-pruned set merged cheaper: %.6f < %.6f",
				trial, cand.Cost, p2pSum)
		}
	}
	if prunedChecked < 10 {
		t.Fatalf("only %d pruned sets sampled", prunedChecked)
	}
}

// TestUnprunedSupersetNeverLosesOptimum: on random instances the
// enumeration with prunes and without prunes lead to the same selected
// minimum once priced (spot soundness of the whole pipeline, cheaper
// version of the E7 ablation).
func TestUnprunedSupersetNeverLosesOptimum(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	lib := soundnessLib()
	for trial := 0; trial < 10; trial++ {
		cg := randomInstance(r, 4)
		pruned, err := merging.Enumerate(cg, lib, merging.Options{Policy: merging.AnyRef})
		if err != nil {
			t.Fatal(err)
		}
		unpruned, err := merging.Enumerate(cg, lib, merging.Options{
			DisableLemma31: true, DisableLemma32: true,
			DisableTheorem31: true, DisableTheorem32: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		best := func(res *merging.Result) float64 {
			bestCost := math.Inf(1)
			for k := 2; k <= 4; k++ {
				for _, set := range res.ByK[k] {
					cand, err := place.Optimize(cg, lib, set, place.Options{})
					if err != nil {
						continue
					}
					var alt float64
					for _, ch := range set {
						plan, err := p2p.BestPlan(cg.Distance(ch), cg.Bandwidth(ch), lib, p2p.Options{})
						if err != nil {
							t.Fatal(err)
						}
						alt += plan.Cost
					}
					if gain := alt - cand.Cost; gain > 0 && cand.Cost < bestCost {
						bestCost = cand.Cost
					}
				}
			}
			return bestCost
		}
		bp, bu := best(pruned), best(unpruned)
		// Any profitable merging found without prunes must also be
		// found (or beaten) with prunes.
		if math.IsInf(bp, 1) != math.IsInf(bu, 1) || (!math.IsInf(bp, 1) && bp > bu+1e-6) {
			t.Fatalf("trial %d: pruning lost a profitable merging: pruned-best %v vs unpruned-best %v",
				trial, bp, bu)
		}
	}
}

package merging

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/library"
	"repro/internal/model"
)

func pairGraph(t *testing.T, u1, v1, u2, v2 geom.Point, b1, b2 float64) *model.ConstraintGraph {
	t.Helper()
	cg := model.NewConstraintGraph(geom.Euclidean)
	pu1 := cg.MustAddPort(model.Port{Name: "u1", Position: u1})
	pv1 := cg.MustAddPort(model.Port{Name: "v1", Position: v1})
	pu2 := cg.MustAddPort(model.Port{Name: "u2", Position: u2})
	pv2 := cg.MustAddPort(model.Port{Name: "v2", Position: v2})
	cg.MustAddChannel(model.Channel{Name: "a1", From: pu1, To: pv1, Bandwidth: b1})
	cg.MustAddChannel(model.Channel{Name: "a2", From: pu2, To: pv2, Bandwidth: b2})
	return cg
}

func testLib() *library.Library {
	return &library.Library{
		Links: []library.Link{
			{Name: "slow", Bandwidth: 11, MaxSpan: math.Inf(1), CostPerLength: 2},
			{Name: "fast", Bandwidth: 100, MaxSpan: math.Inf(1), CostPerLength: 4},
		},
	}
}

func TestSymMatrix(t *testing.T) {
	m := NewSymMatrix(3)
	m.Set(0, 2, 5)
	if m.At(0, 2) != 5 || m.At(2, 0) != 5 {
		t.Error("symmetry broken")
	}
	if m.Size() != 3 {
		t.Errorf("Size = %d", m.Size())
	}
	if !strings.Contains(m.String(), "5.00") {
		t.Error("String should render entries")
	}
}

func TestGammaDelta(t *testing.T) {
	// Two parallel horizontal arcs, sources and dests 1 apart vertically.
	cg := pairGraph(t,
		geom.Pt(0, 0), geom.Pt(10, 0),
		geom.Pt(0, 1), geom.Pt(10, 1), 5, 5)
	g := Gamma(cg)
	d := Delta(cg)
	if g.At(0, 1) != 20 {
		t.Errorf("Γ = %v, want 20", g.At(0, 1))
	}
	if d.At(0, 1) != 2 {
		t.Errorf("Δ = %v, want 2", d.At(0, 1))
	}
	// Γ > Δ: mergeable candidate.
	if NotMergeablePair(g, d, 0, 1) {
		t.Error("parallel nearby arcs should be merge candidates")
	}
}

func TestLemma31PrunesDivergentPair(t *testing.T) {
	// Two arcs pointing away from each other: detour cannot pay off.
	cg := pairGraph(t,
		geom.Pt(0, 0), geom.Pt(-10, 0),
		geom.Pt(100, 0), geom.Pt(110, 0), 5, 5)
	g := Gamma(cg)
	d := Delta(cg)
	if !NotMergeablePair(g, d, 0, 1) {
		t.Errorf("divergent pair should be pruned: Γ=%v Δ=%v", g.At(0, 1), d.At(0, 1))
	}
}

func TestLemma31BoundaryEquality(t *testing.T) {
	// Head-to-tail arcs on a line: Γ == Δ exactly; the ≤ in Lemma 3.1
	// prunes the pair.
	cg := pairGraph(t,
		geom.Pt(0, 0), geom.Pt(1, 0),
		geom.Pt(1, 0), geom.Pt(2, 0), 5, 5)
	g := Gamma(cg)
	d := Delta(cg)
	if g.At(0, 1) != d.At(0, 1) {
		t.Fatalf("expected equality: Γ=%v Δ=%v", g.At(0, 1), d.At(0, 1))
	}
	if !NotMergeablePair(g, d, 0, 1) {
		t.Error("boundary case must prune")
	}
}

func TestBandwidthVector(t *testing.T) {
	cg := pairGraph(t, geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(1, 1), 7, 9)
	b := BandwidthVector(cg)
	if len(b) != 2 || b[0] != 7 || b[1] != 9 {
		t.Errorf("BandwidthVector = %v", b)
	}
}

func TestTheorem32Bandwidth(t *testing.T) {
	bw := []float64{10, 10, 10}
	lib := &library.Library{Links: []library.Link{
		{Name: "l", Bandwidth: 15, MaxSpan: 1, CostFixed: 1},
	}}
	// Σ = 30 ≥ max_l (15) + min (10) = 25 → pruned.
	if !NotMergeableBandwidth(bw, []int{0, 1, 2}, lib) {
		t.Error("bandwidth prune should trigger")
	}
	// Pair: Σ = 20 < 25 → kept.
	if NotMergeableBandwidth(bw, []int{0, 1}, lib) {
		t.Error("pair should survive bandwidth prune")
	}
	if NotMergeableBandwidth(bw, nil, lib) {
		t.Error("empty set should never be pruned")
	}
}

func TestNotMergeableSetPolicies(t *testing.T) {
	// Three-arc instance where the reference choice matters is exercised
	// via the WAN instance in the integration tests; here check the
	// degenerate cases and that AnyRef is at least as aggressive as
	// fixed-reference policies on random instances.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		cg := model.NewConstraintGraph(geom.Euclidean)
		n := 3 + r.Intn(3)
		var ids []model.ChannelID
		for i := 0; i < n; i++ {
			u := cg.MustAddPort(model.Port{
				Name:     "u" + string(rune('0'+i)),
				Position: geom.Pt(r.Float64()*50, r.Float64()*50),
			})
			v := cg.MustAddPort(model.Port{
				Name:     "v" + string(rune('0'+i)),
				Position: geom.Pt(r.Float64()*50, r.Float64()*50),
			})
			ids = append(ids, cg.MustAddChannel(model.Channel{
				Name: "a" + string(rune('0'+i)), From: u, To: v, Bandwidth: 5,
			}))
		}
		_ = ids
		gamma := Gamma(cg)
		delta := Delta(cg)
		dist := make([]float64, n)
		for i := range dist {
			dist[i] = cg.Distance(model.ChannelID(i))
		}
		set := []int{0, 1, 2}
		for _, pol := range []RefPolicy{MaxIndexRef, MaxDistRef, MinDistRef} {
			if NotMergeableSet(gamma, delta, set, pol, dist) &&
				!NotMergeableSet(gamma, delta, set, AnyRef, dist) {
				t.Fatalf("trial %d: AnyRef weaker than %v", trial, pol)
			}
		}
	}
}

func TestNotMergeableSetDegenerate(t *testing.T) {
	g := NewSymMatrix(3)
	d := NewSymMatrix(3)
	if NotMergeableSet(g, d, []int{0}, AnyRef, []float64{1, 1, 1}) {
		t.Error("singleton can never be non-mergeable")
	}
	if NotMergeableSet(g, d, nil, AnyRef, nil) {
		t.Error("empty set can never be non-mergeable")
	}
}

func TestRefPolicyString(t *testing.T) {
	for _, p := range []RefPolicy{AnyRef, MaxIndexRef, MaxDistRef, MinDistRef} {
		if p.String() == "unknown" || p.String() == "" {
			t.Errorf("policy %d has no name", p)
		}
	}
	if RefPolicy(99).String() != "unknown" {
		t.Error("unknown policy should render as unknown")
	}
}

func TestEnumerateEmptyGraph(t *testing.T) {
	cg := model.NewConstraintGraph(geom.Euclidean)
	cg.MustAddPort(model.Port{Name: "p", Position: geom.Pt(0, 0)})
	if _, err := Enumerate(cg, testLib(), Options{}); err == nil {
		t.Error("no channels should be an error")
	}
}

func TestEnumerateMaxK(t *testing.T) {
	cg := clusterInstance(t, 5)
	res, err := Enumerate(cg, testLib(), Options{Policy: MaxIndexRef, MaxK: 2})
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	if res.Count(3) != 0 {
		t.Error("MaxK=2 must not produce 3-way candidates")
	}
}

func TestEnumerateCandidateCap(t *testing.T) {
	cg := clusterInstance(t, 8)
	if _, err := Enumerate(cg, testLib(), Options{Policy: MaxIndexRef, MaxCandidates: 3}); err == nil {
		t.Error("cap of 3 should abort on a dense instance")
	}
}

func TestEnumerateAblationFlags(t *testing.T) {
	cg := clusterInstance(t, 6)
	strict, err := Enumerate(cg, testLib(), Options{Policy: AnyRef})
	if err != nil {
		t.Fatal(err)
	}
	noPrune, err := Enumerate(cg, testLib(), Options{
		Policy:           AnyRef,
		DisableLemma31:   true,
		DisableLemma32:   true,
		DisableTheorem31: true,
		DisableTheorem32: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if noPrune.TotalCandidates() < strict.TotalCandidates() {
		t.Errorf("disabling prunes lost candidates: %d < %d",
			noPrune.TotalCandidates(), strict.TotalCandidates())
	}
	// With everything disabled, every subset is a candidate: Σ C(n,k).
	n := cg.NumChannels()
	want := 0
	for k := 2; k <= n; k++ {
		want += binomial(n, k)
	}
	if noPrune.TotalCandidates() != want {
		t.Errorf("unpruned candidates = %d, want %d", noPrune.TotalCandidates(), want)
	}
	if noPrune.SetsPruned != 0 {
		t.Errorf("SetsPruned = %d with all prunes disabled", noPrune.SetsPruned)
	}
}

// clusterInstance builds n channels between two tight clusters, so that
// most subsets are merge candidates.
func clusterInstance(t *testing.T, n int) *model.ConstraintGraph {
	t.Helper()
	r := rand.New(rand.NewSource(int64(n)))
	cg := model.NewConstraintGraph(geom.Euclidean)
	for i := 0; i < n; i++ {
		u := cg.MustAddPort(model.Port{
			Name:     "u" + string(rune('a'+i)),
			Position: geom.Pt(r.Float64(), r.Float64()),
		})
		v := cg.MustAddPort(model.Port{
			Name:     "v" + string(rune('a'+i)),
			Position: geom.Pt(100+r.Float64(), r.Float64()),
		})
		cg.MustAddChannel(model.Channel{
			Name: "ch" + string(rune('a'+i)), From: u, To: v, Bandwidth: 5,
		})
	}
	return cg
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	res := 1
	for i := 0; i < k; i++ {
		res = res * (n - i) / (i + 1)
	}
	return res
}

// Property: Theorem 3.1 bookkeeping is consistent — an arc eliminated at
// level k appears in no candidate of arity > k.
func TestTheorem31ConsistencyProperty(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		cg := model.NewConstraintGraph(geom.Euclidean)
		n := 4 + r.Intn(4)
		for i := 0; i < n; i++ {
			u := cg.MustAddPort(model.Port{
				Name:     "u" + string(rune('0'+i)),
				Position: geom.Pt(r.Float64()*100, r.Float64()*100),
			})
			v := cg.MustAddPort(model.Port{
				Name:     "v" + string(rune('0'+i)),
				Position: geom.Pt(r.Float64()*100, r.Float64()*100),
			})
			cg.MustAddChannel(model.Channel{
				Name: "a" + string(rune('0'+i)), From: u, To: v, Bandwidth: 5,
			})
		}
		res, err := Enumerate(cg, testLib(), Options{Policy: MaxIndexRef})
		if err != nil {
			t.Fatal(err)
		}
		for ch, k := range res.EliminatedAt {
			if m := res.MaxArityOf(ch); m > k {
				t.Fatalf("trial %d: channel %d eliminated at %d but in a %d-way candidate", trial, ch, k, m)
			}
		}
	}
}

// Property: the geometric content of Lemma 3.1 — when a pair is pruned,
// routing both channels through ANY shared two-hub structure uses at
// least as much total link length as the two direct links.
func TestLemma31GeometricSoundnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	checked := 0
	for trial := 0; trial < 400 && checked < 60; trial++ {
		cg := pairGraph(t,
			geom.Pt(r.Float64()*100, r.Float64()*100),
			geom.Pt(r.Float64()*100, r.Float64()*100),
			geom.Pt(r.Float64()*100, r.Float64()*100),
			geom.Pt(r.Float64()*100, r.Float64()*100),
			5, 5)
		g := Gamma(cg)
		d := Delta(cg)
		if !NotMergeablePair(g, d, 0, 1) {
			continue
		}
		checked++
		c0 := cg.Channel(0)
		c1 := cg.Channel(1)
		u1, v1 := cg.Position(c0.From), cg.Position(c0.To)
		u2, v2 := cg.Position(c1.From), cg.Position(c1.To)
		direct := g.At(0, 1)
		for probe := 0; probe < 100; probe++ {
			x1 := geom.Pt(r.Float64()*100, r.Float64()*100)
			x2 := geom.Pt(r.Float64()*100, r.Float64()*100)
			norm := cg.Norm()
			merged := norm.Distance(u1, x1) + norm.Distance(u2, x1) +
				norm.Distance(x1, x2) +
				norm.Distance(x2, v1) + norm.Distance(x2, v2)
			if merged < direct-1e-9 {
				t.Fatalf("pruned pair admits shorter merged routing: %v < %v", merged, direct)
			}
		}
	}
	if checked < 20 {
		t.Fatalf("too few pruned pairs sampled: %d", checked)
	}
}

package merging

import (
	"testing"

	"repro/internal/model"
)

// fullRescanMaxArity is the original O(candidates×k) definition of
// MaxArityOf, kept as the oracle for the precomputed map.
func fullRescanMaxArity(r *Result, ch model.ChannelID) int {
	max := 0
	for k, sets := range r.ByK {
		for _, set := range sets {
			for _, c := range set {
				if c == ch && k > max {
					max = k
				}
			}
		}
	}
	return max
}

// TestMaxArityMapMatchesRescan: the per-channel max-arity map filled in
// during enumeration must agree with a full rescan of ByK, for every
// channel, across policies and instance shapes.
func TestMaxArityMapMatchesRescan(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		cg := clusterInstance(t, n)
		for _, policy := range []RefPolicy{AnyRef, MaxIndexRef, MaxDistRef} {
			res, err := Enumerate(cg, testLib(), Options{Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				ch := model.ChannelID(i)
				if got, want := res.MaxArityOf(ch), fullRescanMaxArity(res, ch); got != want {
					t.Errorf("n=%d policy=%v channel %d: MaxArityOf=%d, rescan=%d",
						n, policy, i, got, want)
				}
			}
		}
	}
}

// TestTotalCandidatesRunningCounter: the running counter must equal the
// sum over ByK at every instance size, including the zero-candidate
// case.
func TestTotalCandidatesRunningCounter(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8} {
		cg := clusterInstance(t, n)
		res, err := Enumerate(cg, testLib(), Options{Policy: MaxIndexRef})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0
		for _, sets := range res.ByK {
			sum += len(sets)
		}
		if got := res.TotalCandidates(); got != sum {
			t.Errorf("n=%d: TotalCandidates=%d, ByK sum=%d", n, got, sum)
		}
	}
}

// TestHandAssembledResultFallbacks: a Result built by hand (no
// enumeration bookkeeping) must still answer TotalCandidates and
// MaxArityOf by scanning ByK.
func TestHandAssembledResultFallbacks(t *testing.T) {
	r := &Result{ByK: map[int][][]model.ChannelID{
		2: {{0, 1}, {1, 2}},
		3: {{0, 1, 2}},
	}}
	if got := r.TotalCandidates(); got != 3 {
		t.Errorf("TotalCandidates=%d, want 3", got)
	}
	if got := r.MaxArityOf(1); got != 3 {
		t.Errorf("MaxArityOf(1)=%d, want 3", got)
	}
	if got := r.MaxArityOf(3); got != 0 {
		t.Errorf("MaxArityOf(3)=%d, want 0", got)
	}
}

// TestCandidateCapExactBoundary: a cap equal to the actual candidate
// count must succeed; one below must abort with an error.
func TestCandidateCapExactBoundary(t *testing.T) {
	cg := clusterInstance(t, 6)
	res, err := Enumerate(cg, testLib(), Options{Policy: MaxIndexRef})
	if err != nil {
		t.Fatal(err)
	}
	total := res.TotalCandidates()
	if total < 2 {
		t.Skipf("instance produced only %d candidates", total)
	}
	if _, err := Enumerate(cg, testLib(), Options{Policy: MaxIndexRef, MaxCandidates: total}); err != nil {
		t.Errorf("cap == total (%d) must not abort: %v", total, err)
	}
	if _, err := Enumerate(cg, testLib(), Options{Policy: MaxIndexRef, MaxCandidates: total - 1}); err == nil {
		t.Errorf("cap %d below total %d must abort", total-1, total)
	}
}

package merging_test

import (
	"fmt"

	"repro/internal/merging"
	"repro/internal/workloads"
)

// Example reproduces the paper's Section 4 candidate generation on the
// WAN instance: the Γ(a1,a2) entry of Table 1 and the per-k candidate
// counts.
func Example() {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()

	gamma := merging.Gamma(cg)
	fmt.Printf("Γ(a1,a2) = %.2f km\n", gamma.At(0, 1))

	res, _ := merging.Enumerate(cg, lib, merging.Options{Policy: merging.MaxIndexRef})
	for k := 2; k <= 4; k++ {
		fmt.Printf("%d-way candidates: %d\n", k, res.Count(k))
	}
	// Output:
	// Γ(a1,a2) = 10.38 km
	// 2-way candidates: 13
	// 3-way candidates: 21
	// 4-way candidates: 16
}

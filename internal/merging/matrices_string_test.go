package merging

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// refMatrixString is the pre-builder rendering: naive string
// concatenation over every cell. O(n²) appends each copying the
// accumulated string — the quadratic behavior the strings.Builder
// rewrite removed — kept here as the byte-exact golden reference.
func refMatrixString(m *SymMatrix) string {
	s := ""
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j <= i {
				s += fmt.Sprintf("%9s", "")
				continue
			}
			s += fmt.Sprintf("%9.2f", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// TestSymMatrixStringGolden pins the builder-based String to the exact
// bytes of the concatenation-based original, including the 9-space
// lower-triangle padding, across sizes and value magnitudes (negatives
// and >6-digit entries widen cells past the %9.2f minimum, which the
// Grow estimate must tolerate without changing output).
func TestSymMatrixStringGolden(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 8, 17, 40} {
		m := NewSymMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := (r.Float64() - 0.25) * 1e5
				m.Set(i, j, v)
			}
		}
		got, want := m.String(), refMatrixString(m)
		if got != want {
			t.Fatalf("n=%d: String() diverged from reference rendering\n got: %q\nwant: %q", n, got, want)
		}
		if n > 1 && !strings.HasSuffix(got, "\n") {
			t.Fatalf("n=%d: rendering lost trailing newline", n)
		}
	}
}

// TestSymMatrixStringLinear guards the point of the rewrite: rendering
// must not allocate quadratically. One Builder with a Grow up front
// means allocations stay (nearly) flat in n — the old concatenation
// performed one allocation per cell.
func TestSymMatrixStringLinear(t *testing.T) {
	m := NewSymMatrix(60)
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			m.Set(i, j, float64(i*60+j))
		}
	}
	allocs := testing.AllocsPerRun(20, func() { _ = m.String() })
	// The buffer and its string conversion; 3600 cells cost thousands of
	// allocations under concatenation or per-cell Fprintf boxing.
	if allocs > 10 {
		t.Errorf("String() allocates %.0f times for a 60×60 matrix; rendering regressed to per-cell allocation", allocs)
	}
}

// Package merging implements the local-solution generation step of the
// CDCS algorithm (Section 3): the Constrained Distance Sum Matrix Γ and
// the Merging Distance Sum Matrix Δ, the non-mergeability conditions of
// Lemma 3.1, Lemma 3.2 and Theorem 3.2, the Theorem 3.1 arc elimination,
// and the enumeration of candidate k-way arc mergings (the algorithm of
// Figure 2).
package merging

import (
	"fmt"

	"repro/internal/model"
)

// SymMatrix is a symmetric matrix over the constraint arcs, stored
// densely. Diagonal entries are unused (a merging needs at least two
// distinct arcs) and kept at zero.
type SymMatrix struct {
	n    int
	vals []float64
}

// NewSymMatrix returns an n×n zero symmetric matrix.
func NewSymMatrix(n int) *SymMatrix {
	return &SymMatrix{n: n, vals: make([]float64, n*n)}
}

// Size returns the matrix dimension.
func (m *SymMatrix) Size() int { return m.n }

// At returns the (i, j) entry.
func (m *SymMatrix) At(i, j int) float64 { return m.vals[i*m.n+j] }

// Set writes the (i, j) and (j, i) entries.
func (m *SymMatrix) Set(i, j int, v float64) {
	m.vals[i*m.n+j] = v
	m.vals[j*m.n+i] = v
}

// Gamma computes the Constrained Distance Sum Matrix of Section 3:
// Γ(aᵢ, aⱼ) = d(aᵢ) + d(aⱼ). (Table 1 of the paper.)
func Gamma(cg *model.ConstraintGraph) *SymMatrix {
	n := cg.NumChannels()
	m := NewSymMatrix(n)
	for i := 0; i < n; i++ {
		di := cg.Distance(model.ChannelID(i))
		for j := i + 1; j < n; j++ {
			m.Set(i, j, di+cg.Distance(model.ChannelID(j)))
		}
	}
	return m
}

// Delta computes the Merging Distance Sum Matrix of Section 3:
// Δ(aᵢ, aⱼ) = ‖p(uᵢ) − p(uⱼ)‖ + ‖p(vᵢ) − p(vⱼ)‖, the summed distances
// between the two arcs' sources and between their destinations.
// (Table 2 of the paper.)
func Delta(cg *model.ConstraintGraph) *SymMatrix {
	n := cg.NumChannels()
	norm := cg.Norm()
	m := NewSymMatrix(n)
	for i := 0; i < n; i++ {
		ci := cg.Channel(model.ChannelID(i))
		for j := i + 1; j < n; j++ {
			cj := cg.Channel(model.ChannelID(j))
			du := norm.Distance(cg.Position(ci.From), cg.Position(cj.From))
			dv := norm.Distance(cg.Position(ci.To), cg.Position(cj.To))
			m.Set(i, j, du+dv)
		}
	}
	return m
}

// BandwidthVector returns b(a) for every channel, in channel-ID order
// (the ComputeBandwidthVector step of Figure 2).
func BandwidthVector(cg *model.ConstraintGraph) []float64 {
	n := cg.NumChannels()
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		b[i] = cg.Bandwidth(model.ChannelID(i))
	}
	return b
}

// String renders the upper triangle with two decimals, mirroring the
// layout of the paper's Tables 1 and 2.
func (m *SymMatrix) String() string {
	s := ""
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j <= i {
				s += fmt.Sprintf("%9s", "")
				continue
			}
			s += fmt.Sprintf("%9.2f", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

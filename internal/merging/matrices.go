// Package merging implements the local-solution generation step of the
// CDCS algorithm (Section 3): the Constrained Distance Sum Matrix Γ and
// the Merging Distance Sum Matrix Δ, the non-mergeability conditions of
// Lemma 3.1, Lemma 3.2 and Theorem 3.2, the Theorem 3.1 arc elimination,
// and the enumeration of candidate k-way arc mergings (the algorithm of
// Figure 2).
package merging

import (
	"strconv"

	"repro/internal/model"
)

// SymMatrix is a symmetric matrix over the constraint arcs, stored
// densely. Diagonal entries are unused (a merging needs at least two
// distinct arcs) and kept at zero.
type SymMatrix struct {
	n    int
	vals []float64
}

// NewSymMatrix returns an n×n zero symmetric matrix.
func NewSymMatrix(n int) *SymMatrix {
	return &SymMatrix{n: n, vals: make([]float64, n*n)}
}

// Size returns the matrix dimension.
func (m *SymMatrix) Size() int { return m.n }

// At returns the (i, j) entry.
func (m *SymMatrix) At(i, j int) float64 { return m.vals[i*m.n+j] }

// row returns row i of the dense backing array as a slice view. The
// prune tests index it directly in their inner loops; by symmetry
// row(i)[j] == At(i, j) == At(j, i).
func (m *SymMatrix) row(i int) []float64 { return m.vals[i*m.n : (i+1)*m.n] }

// Set writes the (i, j) and (j, i) entries.
func (m *SymMatrix) Set(i, j int, v float64) {
	m.vals[i*m.n+j] = v
	m.vals[j*m.n+i] = v
}

// Gamma computes the Constrained Distance Sum Matrix of Section 3:
// Γ(aᵢ, aⱼ) = d(aᵢ) + d(aⱼ). (Table 1 of the paper.)
func Gamma(cg *model.ConstraintGraph) *SymMatrix {
	n := cg.NumChannels()
	m := NewSymMatrix(n)
	for i := 0; i < n; i++ {
		di := cg.Distance(model.ChannelID(i))
		for j := i + 1; j < n; j++ {
			m.Set(i, j, di+cg.Distance(model.ChannelID(j)))
		}
	}
	return m
}

// Delta computes the Merging Distance Sum Matrix of Section 3:
// Δ(aᵢ, aⱼ) = ‖p(uᵢ) − p(uⱼ)‖ + ‖p(vᵢ) − p(vⱼ)‖, the summed distances
// between the two arcs' sources and between their destinations.
// (Table 2 of the paper.)
func Delta(cg *model.ConstraintGraph) *SymMatrix {
	n := cg.NumChannels()
	norm := cg.Norm()
	m := NewSymMatrix(n)
	for i := 0; i < n; i++ {
		ci := cg.Channel(model.ChannelID(i))
		for j := i + 1; j < n; j++ {
			cj := cg.Channel(model.ChannelID(j))
			du := norm.Distance(cg.Position(ci.From), cg.Position(cj.From))
			dv := norm.Distance(cg.Position(ci.To), cg.Position(cj.To))
			m.Set(i, j, du+dv)
		}
	}
	return m
}

// BandwidthVector returns b(a) for every channel, in channel-ID order
// (the ComputeBandwidthVector step of Figure 2).
func BandwidthVector(cg *model.ConstraintGraph) []float64 {
	n := cg.NumChannels()
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		b[i] = cg.Bandwidth(model.ChannelID(i))
	}
	return b
}

// String renders the upper triangle with two decimals, mirroring the
// layout of the paper's Tables 1 and 2. The output is appended into one
// byte buffer sized up front, with entries formatted by
// strconv.AppendFloat into a stack scratch and left-padded to the %9.2f
// layout by hand. The former += concatenation copied the accumulated
// string once per cell — quadratically many reallocating appends over
// the n²·9 bytes emitted — and the obvious fmt.Fprintf replacement
// still boxes every float64 into an interface, one heap allocation per
// cell; this rendering performs two allocations total regardless of n.
// Byte-compatibility with fmt's "%9.2f" (including NaN/±Inf spelling
// and cells overflowing the 9-column minimum) is pinned by the golden
// test against the reference renderer.
func (m *SymMatrix) String() string {
	buf := make([]byte, 0, m.n*(m.n*9+1))
	var num [24]byte
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j <= i {
				buf = append(buf, "         "...)
				continue
			}
			s := strconv.AppendFloat(num[:0], m.At(i, j), 'f', 2, 64)
			for pad := 9 - len(s); pad > 0; pad-- {
				buf = append(buf, ' ')
			}
			buf = append(buf, s...)
		}
		buf = append(buf, '\n')
	}
	return string(buf)
}

package merging

import (
	"repro/internal/library"
	"repro/internal/num"
)

// The non-mergeability conditions. All are *sufficient* conditions for a
// set of arcs NOT to be k-way mergeable (Definition 3.1): triggering any
// of them proves that every merged implementation is dominated by
// point-to-point (or smaller-merging) implementations, so pruning is
// always sound. Failing to trigger proves nothing — the surviving
// candidate sets are priced later and the covering step decides.

// NotMergeablePair is Lemma 3.1: the pair {aᵢ, aⱼ} is not 2-way
// mergeable when d(aᵢ)+d(aⱼ) ≤ ‖p(uᵢ)−p(uⱼ)‖+‖p(vᵢ)−p(vⱼ)‖, i.e. when
// Γ(aᵢ,aⱼ) ≤ Δ(aᵢ,aⱼ): the detour through any shared path costs at
// least as much as the two direct implementations.
//
// The comparison is epsilon-tolerant (num.LessEq): both sides are sums
// of Euclidean distances, so a mathematical tie — common in symmetric
// layouts — may come out split by float rounding. Treating
// within-noise ties as the lemma's ≤ keeps the prune decision
// independent of summation order.
func NotMergeablePair(gamma, delta *SymMatrix, i, j int) bool {
	return num.LessEq(gamma.At(i, j), delta.At(i, j))
}

// NotMergeableRef is Lemma 3.2 with aᵣ as the reference arc: the set
// {arcs} ∪ {ref} is not k-way mergeable when
//
//	(k−1)·d(a_r) + Σᵢ d(aᵢ)  ≤  Σᵢ ‖p(uᵢ)−p(u_r)‖+‖p(vᵢ)−p(v_r)‖
//
// which in matrix form is Σᵢ Γ(aᵢ, a_r) ≤ Σᵢ Δ(aᵢ, a_r) over the
// non-reference arcs aᵢ.
// The row slices are taken once from the dense backing array (the
// matrices are symmetric, so row ref holds every (i, ref) entry) and
// indexed directly in the loop — the Lemma 3.2 test is the innermost
// operation of enumeration at k ≥ 3, and hoisting the ref·n offset out
// of the element accesses is measurable there. Summation order over
// arcs is unchanged, so the epsilon-tolerant comparison sees bit-equal
// operands.
func NotMergeableRef(gamma, delta *SymMatrix, arcs []int, ref int) bool {
	grow := gamma.row(ref)
	drow := delta.row(ref)
	var lhs, rhs float64
	for _, i := range arcs {
		if i == ref {
			continue
		}
		lhs += grow[i]
		rhs += drow[i]
	}
	return num.LessEq(lhs, rhs)
}

// NotMergeableBandwidth is Theorem 3.2: the set is not mergeable when
// Σ b(aᵢ) ≥ max over library links of b(l) + min over the set of b(aⱼ) —
// no library link could carry the merged traffic while beating the
// cheapest arc's stand-alone implementation.
func NotMergeableBandwidth(bw []float64, arcs []int, lib *library.Library) bool {
	if len(arcs) == 0 {
		return false
	}
	var sum float64
	min := bw[arcs[0]]
	for _, i := range arcs {
		sum += bw[i]
		if num.Below(bw[i], min) {
			min = bw[i]
		}
	}
	return num.GreaterEq(sum, lib.MaxBandwidth()+min)
}

// RefPolicy selects how the Lemma 3.2 reference arc is chosen when
// testing a k-set (k ≥ 3). Lemma 3.2 holds for any reference, so testing
// more references prunes more sets; all policies are sound.
type RefPolicy int

const (
	// AnyRef tests every arc of the set as the reference and prunes if
	// any test triggers — the strongest sound prune.
	AnyRef RefPolicy = iota
	// MaxIndexRef tests only the highest-numbered arc, matching an
	// incremental implementation that extends sets by appending arcs.
	MaxIndexRef
	// MaxDistRef tests only the arc with the largest distance, which
	// maximizes the (k−1)·d(a_r) term of the left-hand side.
	MaxDistRef
	// MinDistRef tests only the arc with the smallest distance.
	MinDistRef
)

// String names the policy.
func (p RefPolicy) String() string {
	switch p {
	case AnyRef:
		return "any-ref"
	case MaxIndexRef:
		return "max-index-ref"
	case MaxDistRef:
		return "max-dist-ref"
	case MinDistRef:
		return "min-dist-ref"
	default:
		return "unknown"
	}
}

// NotMergeableSet applies Lemma 3.2 under the given reference policy.
// dist supplies d(a) per arc index (needed by the distance-based
// policies).
func NotMergeableSet(gamma, delta *SymMatrix, arcs []int, policy RefPolicy, dist []float64) bool {
	if len(arcs) < 2 {
		return false
	}
	if len(arcs) == 2 {
		return NotMergeablePair(gamma, delta, arcs[0], arcs[1])
	}
	switch policy {
	case AnyRef:
		for _, ref := range arcs {
			if NotMergeableRef(gamma, delta, arcs, ref) {
				return true
			}
		}
		return false
	case MaxIndexRef:
		ref := arcs[0]
		for _, i := range arcs {
			if i > ref {
				ref = i
			}
		}
		return NotMergeableRef(gamma, delta, arcs, ref)
	case MaxDistRef:
		ref := arcs[0]
		for _, i := range arcs {
			if num.Stronger(dist[i], dist[ref]) {
				ref = i
			}
		}
		return NotMergeableRef(gamma, delta, arcs, ref)
	case MinDistRef:
		ref := arcs[0]
		for _, i := range arcs {
			if num.Below(dist[i], dist[ref]) {
				ref = i
			}
		}
		return NotMergeableRef(gamma, delta, arcs, ref)
	default:
		return false
	}
}

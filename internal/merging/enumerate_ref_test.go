package merging

// The flat-representation refactor (bitset live/in-candidate sets,
// dense matrix rows) must be a pure change of representation: the
// benchmark gate pins the enumeration counters on the fixed workloads,
// and this file pins them on *arbitrary* instances. enumerateRef below
// preserves the pre-refactor bookkeeping — an active index slice
// rebuilt per level and an in-candidate hash map — and the property
// test checks, over randomized graphs, policies and caps, that the
// bitset implementation returns identical candidate sets, identical
// Theorem 3.1 eliminations, and identical counters.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/library"
	"repro/internal/model"
)

// enumerateRef is the pre-refactor enumeration loop: same prune order,
// same subset odometer, same cap semantics, but map/slice bookkeeping
// instead of bitsets. Kept uncancellable (no context) — the property
// runs to completion.
func enumerateRef(cg *model.ConstraintGraph, lib *library.Library, opt Options) (*Result, error) {
	n := cg.NumChannels()
	gamma := Gamma(cg)
	delta := Delta(cg)
	bw := BandwidthVector(cg)
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		dist[i] = cg.Distance(model.ChannelID(i))
	}
	maxK := opt.MaxK
	if maxK <= 0 || maxK > n {
		maxK = n
	}
	res := &Result{
		ByK:          make(map[int][][]model.ChannelID),
		EliminatedAt: make(map[model.ChannelID]int),
		maxArity:     make(map[model.ChannelID]int),
	}
	active := make([]int, 0, n)
	for i := 0; i < n; i++ {
		active = append(active, i)
	}
	for k := 2; k <= maxK && len(active) >= k; k++ {
		inCandidate := make(map[int]bool)
		var sets [][]model.ChannelID
		abort := false
		forEachSubset(active, k, func(subset []int) bool {
			res.SetsTested++
			pruned := false
			if !opt.DisableTheorem32 && NotMergeableBandwidth(bw, subset, lib) {
				pruned = true
				res.PrunedTheorem32++
			}
			if !pruned {
				if k == 2 {
					if !opt.DisableLemma31 && NotMergeablePair(gamma, delta, subset[0], subset[1]) {
						pruned = true
						res.PrunedLemma31++
					}
				} else {
					if !opt.DisableLemma32 && NotMergeableSet(gamma, delta, subset, opt.Policy, dist) {
						pruned = true
						res.PrunedLemma32++
					}
				}
			}
			if pruned {
				res.SetsPruned++
				return true
			}
			ids := make([]model.ChannelID, k)
			for i, a := range subset {
				ids[i] = model.ChannelID(a)
			}
			sets = append(sets, ids)
			res.total++
			for _, a := range subset {
				inCandidate[a] = true
				res.maxArity[model.ChannelID(a)] = k
			}
			if opt.MaxCandidates > 0 {
				switch opt.CapMode {
				case CapTruncate:
					if res.total >= opt.MaxCandidates {
						res.Truncated = true
						return false
					}
				default:
					if res.total > opt.MaxCandidates {
						abort = true
						return false
					}
				}
			}
			return true
		})
		if abort {
			return nil, ErrCandidateCap
		}
		res.ByK[k] = sets
		if res.Truncated {
			break
		}
		if len(sets) == 0 {
			break
		}
		if !opt.DisableTheorem31 {
			var next []int
			for _, a := range active {
				if inCandidate[a] {
					next = append(next, a)
				} else if res.EliminatedAt[model.ChannelID(a)] == 0 {
					res.EliminatedAt[model.ChannelID(a)] = k
				}
			}
			active = next
		}
	}
	return res, nil
}

func refTestLib(maxBW float64) *library.Library {
	return &library.Library{
		Links: []library.Link{
			{Name: "thin", Bandwidth: maxBW / 4, MaxSpan: 1e18, CostPerLength: 2},
			{Name: "fat", Bandwidth: maxBW, MaxSpan: 1e18, CostPerLength: 4},
		},
		Nodes: []library.Node{
			{Name: "mux", Kind: library.Mux},
			{Name: "demux", Kind: library.Demux},
		},
	}
}

func refRandomGraph(r *rand.Rand, nch int) *model.ConstraintGraph {
	cg := model.NewConstraintGraph(geom.Euclidean)
	for i := 0; i < nch; i++ {
		u := cg.MustAddPort(model.Port{
			Name:     "u" + string(rune('A'+i)),
			Position: geom.Pt(r.Float64()*100, r.Float64()*100),
		})
		v := cg.MustAddPort(model.Port{
			Name:     "v" + string(rune('A'+i)),
			Position: geom.Pt(r.Float64()*100, r.Float64()*100),
		})
		cg.MustAddChannel(model.Channel{
			Name: "a" + string(rune('A'+i)), From: u, To: v,
			Bandwidth: 1 + r.Float64()*10,
		})
	}
	return cg
}

// TestEnumerateMatchesReference is the property test: for random
// graphs, reference policies, arity caps, candidate caps and ablation
// switches, the bitset enumeration must agree with the pre-refactor
// reference byte for byte — candidate sets, elimination levels, and
// every counter the benchmark gate pins.
func TestEnumerateMatchesReference(t *testing.T) {
	lib := refTestLib(40)
	prop := func(seed int64, nRaw, polRaw, maxKRaw, capRaw uint8, dis31, dis32, disT31, disT32, truncate bool) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%7 // 2..8 channels
		cg := refRandomGraph(r, n)
		opt := Options{
			Policy:           RefPolicy(int(polRaw) % 4),
			MaxK:             int(maxKRaw) % (n + 2), // 0 (=n) .. n+1 (clamped)
			DisableLemma31:   dis31,
			DisableLemma32:   dis32,
			DisableTheorem31: disT31,
			DisableTheorem32: disT32,
		}
		if capRaw%4 == 0 { // sometimes exercise the candidate cap
			opt.MaxCandidates = 1 + int(capRaw)
			if truncate {
				opt.CapMode = CapTruncate
			}
		}
		want, wantErr := enumerateRef(cg, lib, opt)
		got, gotErr := Enumerate(cg, lib, opt)
		if (wantErr == nil) != (gotErr == nil) {
			t.Logf("error divergence: ref %v vs %v", wantErr, gotErr)
			return false
		}
		if wantErr != nil {
			return true // both aborted at the cap
		}
		if !reflect.DeepEqual(got.ByK, want.ByK) {
			t.Logf("ByK diverged:\n got %v\nwant %v", got.ByK, want.ByK)
			return false
		}
		if !reflect.DeepEqual(got.EliminatedAt, want.EliminatedAt) {
			t.Logf("EliminatedAt diverged: got %v want %v", got.EliminatedAt, want.EliminatedAt)
			return false
		}
		if !reflect.DeepEqual(got.maxArity, want.maxArity) {
			t.Logf("maxArity diverged: got %v want %v", got.maxArity, want.maxArity)
			return false
		}
		counters := got.SetsTested == want.SetsTested &&
			got.SetsPruned == want.SetsPruned &&
			got.PrunedLemma31 == want.PrunedLemma31 &&
			got.PrunedLemma32 == want.PrunedLemma32 &&
			got.PrunedTheorem32 == want.PrunedTheorem32 &&
			got.Truncated == want.Truncated &&
			got.total == want.total
		if !counters {
			t.Logf("counters diverged:\n got %+v\nwant %+v", got, want)
		}
		return counters
	}
	cfg := &quick.Config{MaxCount: 150}
	if testing.Short() {
		cfg.MaxCount = 40
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

package merging

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/library"
	"repro/internal/model"
	"repro/internal/obs"
)

// ErrCandidateCap is wrapped in the error Enumerate returns when
// MaxCandidates is exceeded under the (default) CapAbort mode; callers
// distinguish it with errors.Is. The cdcs facade re-exports it.
var ErrCandidateCap = errors.New("candidate cap exceeded")

// cancelCheckInterval is how many tested subsets pass between
// cooperative context polls; a power of two so the hot enumeration
// loop masks instead of divides.
const cancelCheckInterval = 1024

// CapMode selects what happens when MaxCandidates is exceeded.
type CapMode int

const (
	// CapAbort (the default) makes Enumerate return an error wrapping
	// ErrCandidateCap and no partial result.
	CapAbort CapMode = iota
	// CapTruncate stops enumeration at the cap and returns the
	// candidates accepted so far with Result.Truncated set — the
	// graceful-degradation mode: the synthesis optimum over the
	// truncated set is still a valid (possibly sub-optimal)
	// architecture because point-to-point candidates cover every arc.
	CapTruncate
)

// Options configures candidate enumeration.
type Options struct {
	// Policy selects the Lemma 3.2 reference-arc policy. The zero value
	// at this layer is AnyRef, the strongest sound prune; the public
	// cdcs facade instead installs MaxIndexRef as its default, matching
	// the paper's incremental Figure 2 implementation. Both are sound,
	// so the synthesis optimum is identical either way.
	Policy RefPolicy
	// MaxK caps the merging arity considered; zero means |A|.
	MaxK int
	// MaxCandidates caps the accepted candidate count across all levels
	// (a safety valve for large random instances whose candidate sets
	// would take unbounded time to price); zero means unlimited. What
	// happens at the cap is selected by CapMode.
	MaxCandidates int
	// CapMode selects abort (default) or truncate-and-mark behavior
	// when MaxCandidates is exceeded.
	CapMode CapMode
	// DisableLemma31, DisableLemma32 and DisableTheorem32 switch off the
	// respective prunes for ablation studies. Theorem 3.1 elimination is
	// implied by the per-level candidate sets and switched off via
	// DisableTheorem31.
	DisableLemma31   bool
	DisableLemma32   bool
	DisableTheorem31 bool
	DisableTheorem32 bool
}

// Result is the outcome of candidate enumeration.
type Result struct {
	// ByK maps arity k (≥ 2) to the candidate arc sets (each sorted by
	// channel ID).
	ByK map[int][][]model.ChannelID
	// EliminatedAt records, per channel, the level k at which Theorem
	// 3.1 removed it (0 = never removed).
	EliminatedAt map[model.ChannelID]int
	// SetsTested counts k-subsets examined across all levels.
	SetsTested int
	// SetsPruned counts subsets rejected by the lemma/theorem tests.
	SetsPruned int
	// PrunedLemma31, PrunedLemma32 and PrunedTheorem32 break SetsPruned
	// down by the rule that fired (Theorem 3.2's bandwidth test runs
	// first, so a subset failing several tests is counted once, under
	// the first). Theorem 3.1 removals are counted by EliminatedAt.
	PrunedLemma31   int
	PrunedLemma32   int
	PrunedTheorem32 int
	// Truncated is true when the MaxCandidates cap stopped enumeration
	// under CapTruncate: ByK holds the first MaxCandidates candidates
	// in enumeration order and higher levels were not explored.
	Truncated bool
	// Interrupted is true when the context deadline or cancellation
	// stopped enumeration; ByK holds everything accepted so far.
	Interrupted bool

	// total is the running candidate count across all levels,
	// maintained incrementally so the MaxCandidates cap check is O(1)
	// per accepted subset instead of a rescan of ByK.
	total int
	// maxArity caches, per channel, the largest k at which it appears
	// in a candidate set, filled in as candidates are accepted.
	maxArity map[model.ChannelID]int
}

// TotalCandidates returns the number of candidate sets across all k.
func (r *Result) TotalCandidates() int {
	if r.total > 0 || r.maxArity != nil {
		return r.total
	}
	// Hand-assembled Results (tests, external callers) lack the running
	// counter; fall back to summing the map.
	total := 0
	for _, sets := range r.ByK {
		total += len(sets)
	}
	return total
}

// Count returns the number of candidates of arity k.
func (r *Result) Count(k int) int { return len(r.ByK[k]) }

// MaxArityOf returns the largest k at which the channel appears in a
// candidate set (0 if it appears in none).
func (r *Result) MaxArityOf(ch model.ChannelID) int {
	if r.maxArity != nil {
		return r.maxArity[ch]
	}
	// Hand-assembled Results lack the precomputed map; fall back to the
	// full scan.
	max := 0
	for k, sets := range r.ByK {
		for _, set := range sets {
			for _, c := range set {
				if c == ch && k > max {
					max = k
				}
			}
		}
	}
	return max
}

// Enumerate runs the candidate-generation loop of Figure 2: level k = 2
// uses Lemma 3.1 on the Γ and Δ matrices; levels k ≥ 3 use Lemma 3.2
// under the configured reference policy plus the Theorem 3.2 bandwidth
// test; after each level, arcs appearing in no candidate of that level
// are eliminated from all higher levels (Theorem 3.1 — their Γ row and
// column are removed).
func Enumerate(cg *model.ConstraintGraph, lib *library.Library, opt Options) (*Result, error) {
	return EnumerateContext(context.Background(), cg, lib, opt)
}

// EnumerateContext is Enumerate under cooperative cancellation: the
// subset loop polls the context every cancelCheckInterval tested sets
// and, on deadline or cancel, returns the candidates accepted so far
// with Result.Interrupted set instead of an error. The partial set is
// always usable — every returned candidate passed the full prune tests.
func EnumerateContext(ctx context.Context, cg *model.ConstraintGraph, lib *library.Library, opt Options) (*Result, error) {
	n := cg.NumChannels()
	if n == 0 {
		return nil, fmt.Errorf("merging: constraint graph has no channels")
	}
	ctx, endSpan := obs.Trace(ctx, "merging/enumerate", obs.Int("channels", n))
	events := obs.EventsFromContext(ctx)
	gamma := Gamma(cg)
	delta := Delta(cg)
	bw := BandwidthVector(cg)
	dist := make([]float64, n)
	for i := 0; i < n; i++ {
		dist[i] = cg.Distance(model.ChannelID(i))
	}

	maxK := opt.MaxK
	if maxK <= 0 || maxK > n {
		maxK = n
	}

	res := &Result{
		ByK:          make(map[int][][]model.ChannelID),
		EliminatedAt: make(map[model.ChannelID]int),
		maxArity:     make(map[model.ChannelID]int),
	}

	// Theorem 3.1 bookkeeping on flat words: live holds the arcs still
	// eligible for this level's mergings, inCand the arcs seen in some
	// candidate of the current level. Elimination at a level end is one
	// word-wise intersection instead of rebuilding an index slice, and
	// the live members are materialized (ascending, so the subset
	// odometer walks the exact same order as the map-era code) into a
	// scratch slice reused across levels.
	live := newBitset(n)
	live.fill(n)
	inCand := newBitset(n)
	activeScratch := make([]int, 0, n)
	done := ctx.Done()

	for k := 2; k <= maxK && live.count() >= k; k++ {
		// A per-level check makes an already-dead context deterministic
		// even when no level tests enough subsets to reach the
		// amortized in-loop check.
		if done != nil {
			select {
			case <-done:
				res.Interrupted = true
			default:
			}
			if res.Interrupted {
				break
			}
		}
		inCand.reset()
		active := live.appendMembers(activeScratch[:0])
		var sets [][]model.ChannelID
		abort := false

		forEachSubset(active, k, func(subset []int) bool {
			res.SetsTested++
			if done != nil && res.SetsTested&(cancelCheckInterval-1) == 0 {
				select {
				case <-done:
					res.Interrupted = true
					return false
				default:
				}
			}
			pruned := false
			if !opt.DisableTheorem32 && NotMergeableBandwidth(bw, subset, lib) {
				pruned = true
				res.PrunedTheorem32++
			}
			if !pruned {
				if k == 2 {
					if !opt.DisableLemma31 && NotMergeablePair(gamma, delta, subset[0], subset[1]) {
						pruned = true
						res.PrunedLemma31++
					}
				} else {
					if !opt.DisableLemma32 && NotMergeableSet(gamma, delta, subset, opt.Policy, dist) {
						pruned = true
						res.PrunedLemma32++
					}
				}
			}
			if pruned {
				res.SetsPruned++
				return true
			}
			ids := make([]model.ChannelID, k)
			for i, a := range subset {
				ids[i] = model.ChannelID(a)
			}
			sets = append(sets, ids)
			res.total++
			for _, a := range subset {
				inCand.set(a)
				// Levels run in increasing k, so the latest level a
				// channel appears in is its max arity.
				res.maxArity[model.ChannelID(a)] = k
			}
			if opt.MaxCandidates > 0 {
				switch opt.CapMode {
				case CapTruncate:
					if res.total >= opt.MaxCandidates {
						res.Truncated = true
						return false
					}
				default:
					if res.total > opt.MaxCandidates {
						abort = true
						return false
					}
				}
			}
			return true
		})
		if abort {
			endSpan(obs.Bool("aborted", true), obs.Int("candidates", res.total))
			return nil, fmt.Errorf("merging: %w: cap %d at k=%d", ErrCandidateCap, opt.MaxCandidates, k)
		}
		res.ByK[k] = sets
		if events != nil {
			// Per-arity progress: one event per completed level, so a
			// watcher sees the combinatorial frontier advance instead of
			// a silent Step 1b. Published outside the subset loop — a
			// disabled stream costs one nil comparison per level.
			events.Publish(obs.Event{
				Type:       obs.EventEnumLevel,
				K:          k,
				Candidates: len(sets),
				SetsTested: res.SetsTested,
			})
		}
		if res.Truncated || res.Interrupted {
			// The partial level is kept: every accepted set passed the
			// prunes, so pricing it can only improve the architecture.
			break
		}
		if len(sets) == 0 {
			// No k-way candidates at all: by Theorem 3.1 no arc can join
			// a larger merging either; the loop terminates.
			break
		}
		if !opt.DisableTheorem31 {
			// Theorem 3.1 row deletion as a bitmask: arcs in no candidate
			// of this level leave the live set in one AND over the word
			// array; their Γ/Δ rows are never visited again because the
			// next level's subset odometer only walks live members.
			for _, a := range active {
				if !inCand.has(a) && res.EliminatedAt[model.ChannelID(a)] == 0 {
					res.EliminatedAt[model.ChannelID(a)] = k
				}
			}
			live.intersect(inCand)
		}
	}
	res.publishMetrics(ctx)
	endSpan(
		obs.Int("setsTested", res.SetsTested),
		obs.Int("setsPruned", res.SetsPruned),
		obs.Int("candidates", res.total),
		obs.Bool("truncated", res.Truncated),
		obs.Bool("interrupted", res.Interrupted),
	)
	return res, nil
}

// publishMetrics adds the enumeration's counters to the registry
// carried by ctx (no-op without one). The counters are accumulated in
// plain Result fields during the subset loop — the hot path never
// touches an instrument — and published once here, so a disabled sink
// costs nothing and an enabled one costs one batch of atomic adds.
func (r *Result) publishMetrics(ctx context.Context) {
	m := obs.FromContext(ctx).Metrics()
	if m == nil {
		return
	}
	m.Counter("merging/sets_tested").Add(int64(r.SetsTested))
	m.Counter("merging/sets_pruned").Add(int64(r.SetsPruned))
	m.Counter("merging/pruned_lemma31").Add(int64(r.PrunedLemma31))
	m.Counter("merging/pruned_lemma32").Add(int64(r.PrunedLemma32))
	m.Counter("merging/pruned_theorem32").Add(int64(r.PrunedTheorem32))
	m.Counter("merging/theorem31_rows_deleted").Add(int64(len(r.EliminatedAt)))
	m.Counter("merging/candidates").Add(int64(r.TotalCandidates()))
	// Per-arity candidate counts; collect-then-sort keeps the counter
	// creation order deterministic (snapshots sort by name anyway).
	ks := make([]int, 0, len(r.ByK))
	for k := range r.ByK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		m.Counter(fmt.Sprintf("merging/candidates/k%d", k)).Add(int64(len(r.ByK[k])))
	}
}

// forEachSubset invokes fn on every k-subset of items (in lexicographic
// order of positions). fn returning false aborts the enumeration.
func forEachSubset(items []int, k int, fn func([]int) bool) {
	n := len(items)
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	subset := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		for i, pos := range idx {
			subset[i] = items[pos]
		}
		if !fn(subset) {
			return
		}
		// Advance the combination odometer.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

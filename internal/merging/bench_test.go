package merging

import (
	"math"
	"testing"

	"repro/internal/library"
	"repro/internal/workloads"
)

func benchLib() *library.Library {
	return &library.Library{
		Links: []library.Link{
			{Name: "slow", Bandwidth: 11, MaxSpan: math.Inf(1), CostPerLength: 2},
			{Name: "fast", Bandwidth: 1000, MaxSpan: math.Inf(1), CostPerLength: 4},
		},
	}
}

func BenchmarkGammaDeltaWAN(b *testing.B) {
	cg := workloads.WAN()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Gamma(cg)
		_ = Delta(cg)
	}
}

func BenchmarkEnumerateWAN(b *testing.B) {
	cg := workloads.WAN()
	lib := benchLib()
	for _, pol := range []RefPolicy{MaxIndexRef, AnyRef} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Enumerate(cg, lib, Options{Policy: pol}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEnumerateRandom12(b *testing.B) {
	cg := workloads.RandomWAN(workloads.RandomWANConfig{Seed: 4, Clusters: 3, Channels: 12})
	lib := benchLib()
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Enumerate(cg, lib, Options{Policy: AnyRef}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unpruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := Enumerate(cg, lib, Options{
				DisableLemma31: true, DisableLemma32: true,
				DisableTheorem31: true, DisableTheorem32: true,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

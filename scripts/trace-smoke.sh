#!/usr/bin/env sh
# Smoke test of the distributed-tracing surface in isolation: start a
# single cdcsd, run `cdcs -server ... -trace` so the CLI submits a
# traced job and stitches the replica's partial span forest into a
# Chrome trace file, then assert the file carries the serve/job
# execution span, the synth phase tree, and per-replica process_name
# metadata. The deeper propagation and fleet-stitching paths are
# covered by serve-smoke.sh and fleet-smoke.sh; this leg pins the
# user-facing collection workflow end to end.
# Used by `make trace-smoke`. Requires curl and jq.
set -eu

PORT="${CDCS_TRACE_PORT:-18280}"
ADDR="127.0.0.1:$PORT"
BIN="${BIN:-bin}"
LOG="$BIN/trace-smoke.log"
OUT="$BIN/remote-trace.json"

mkdir -p "$BIN"
go build -o "$BIN/cdcsd" ./cmd/cdcsd
go build -o "$BIN/cdcs" ./cmd/cdcs

"$BIN/cdcsd" -addr "$ADDR" -log-level debug >/dev/null 2>"$LOG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT INT TERM

fail() {
    echo "trace-smoke: FAIL: $1" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

for _ in $(seq 1 50); do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1 || fail "/readyz never became ready"

rm -f "$OUT"
"$BIN/cdcs" -server "http://$ADDR" -example wan -trace "$OUT" >>"$LOG" 2>&1 \
    || fail "cdcs -server -trace run failed"
[ -s "$OUT" ] || fail "no stitched trace written to $OUT"

jq -e 'type == "array" and length > 0' "$OUT" >/dev/null \
    || fail "stitched trace is not a non-empty JSON event array"
for span in serve/job serve/admission serve/queue-wait synth/run merging/enumerate; do
    jq -e --arg n "$span" '[.[] | select(.ph == "X") | .name] | any(. == $n)' "$OUT" >/dev/null \
        || fail "stitched trace has no $span event"
done
jq -e '[.[] | select(.ph == "M" and .name == "process_name")] | length >= 1' "$OUT" >/dev/null \
    || fail "stitched trace has no process_name metadata"
jq -e '[.[] | select(.ph == "X") | .pid] | min >= 1' "$OUT" >/dev/null \
    || fail "stitched trace events carry no replica pid"

kill "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon did not exit within 10s of SIGTERM"
    sleep 0.1
done
trap - EXIT INT TERM

echo "trace-smoke: OK ($(jq 'length' "$OUT") events stitched into $OUT)"

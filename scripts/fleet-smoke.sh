#!/usr/bin/env sh
# End-to-end smoke test of a replica-aware cdcsd fleet driven by the
# cdcs-load traffic generator. Two modes:
#
#   fleet (default): start 3 replicas that know each other via
#     -self/-peers, run a steady-rate phase and then a deliberate
#     overload phase (tight -shed-watermarks, ~120 QPS), and
#     jq-assert the generator's JSON reports — zero hard errors, work
#     completed on all 3 replicas, p99 under a generous bound, shed
#     observed under overload but not runaway, and at least one peer
#     forward visible on the /v1/fleet endpoints. A tracing leg then
#     forwards a probe carrying a caller-minted traceparent and
#     asserts its trace is readable from >= 2 replicas (forward hop on
#     the forwarder, serve/job on the owner).
#
#   quick: one replica, one short burst — the `make load` demo.
#
# Used by `make fleet-smoke` / `make load` and CI's fleet-smoke job.
# Requires curl and jq; uses POSIX sh only.
set -eu

MODE="${1:-fleet}"
BASE_PORT="${CDCS_FLEET_PORT:-18180}"
BIN="${BIN:-bin}"
LOG="$BIN/fleet-smoke.log"
PIDS=""

mkdir -p "$BIN"
go build -o "$BIN/cdcsd" ./cmd/cdcsd
go build -o "$BIN/cdcs-load" ./cmd/cdcs-load
: > "$LOG"

fail() {
    echo "fleet-smoke: FAIL: $1" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT INT TERM

wait_ready() {
    for _ in $(seq 1 50); do
        if curl -fsS "http://127.0.0.1:$1/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    fail "replica on port $1 never became ready"
}

# assert FILE JQ_EXPR DESCRIPTION — jq -e the report or die with it.
assert() {
    jq -e "$2" "$1" >/dev/null \
        || fail "$3 ($2 on $(cat "$1"))"
}

if [ "$MODE" = quick ]; then
    PORT=$BASE_PORT
    "$BIN/cdcsd" -addr "127.0.0.1:$PORT" -log-level warn >/dev/null 2>>"$LOG" &
    PIDS="$!"
    wait_ready "$PORT"
    REPORT="$BIN/load-report.json"
    "$BIN/cdcs-load" -targets "http://127.0.0.1:$PORT" \
        -qps 20 -duration 3s -deadline 30s -report "$REPORT" 2>>"$LOG" \
        || fail "cdcs-load run failed"
    assert "$REPORT" '.completed > 0' "no requests completed"
    assert "$REPORT" '.errors == 0' "hard errors against an idle daemon"
    assert "$REPORT" '.deadline_missed == 0' "deadline misses against an idle daemon"
    cat "$REPORT"
    echo "fleet-smoke: OK (quick: $(jq -r '.completed' "$REPORT") jobs completed)"
    exit 0
fi

[ "$MODE" = fleet ] || fail "unknown mode $MODE (want fleet or quick)"

# ---- Start 3 replicas with a shared membership list and tight
# watermarks so the overload phase actually sheds and forwards.
P1=$BASE_PORT
P2=$((BASE_PORT + 1))
P3=$((BASE_PORT + 2))
PEERS="http://127.0.0.1:$P1,http://127.0.0.1:$P2,http://127.0.0.1:$P3"
for port in $P1 $P2 $P3; do
    "$BIN/cdcsd" -addr "127.0.0.1:$port" -log-level warn \
        -max-jobs 2 -retain 1024 -shed-watermarks 6:12 \
        -self "http://127.0.0.1:$port" -peers "$PEERS" \
        >/dev/null 2>>"$LOG" &
    PIDS="$PIDS $!"
done
for port in $P1 $P2 $P3; do
    wait_ready "$port"
done

# Every replica must report the full membership.
for port in $P1 $P2 $P3; do
    n=$(curl -fsS "http://127.0.0.1:$port/v1/fleet" | jq '.peers | length')
    [ "$n" = 3 ] || fail "replica $port sees $n peers, want 3"
done

# ---- Steady phase: comfortably under capacity, nothing drops.
STEADY="$BIN/fleet-steady.json"
"$BIN/cdcs-load" -targets "$PEERS" \
    -qps 5 -duration 5s -deadline 60s -report "$STEADY" 2>>"$LOG" \
    || fail "steady cdcs-load run failed"
assert "$STEADY" '.completed > 0' "steady phase completed nothing"
assert "$STEADY" '.errors == 0' "steady phase hit hard errors"
assert "$STEADY" '.deadline_missed == 0' "steady phase missed deadlines"
assert "$STEADY" '.replicas | length == 3' "steady phase did not use all 3 replicas"
assert "$STEADY" '.balance > 0' "steady phase left a replica idle"
assert "$STEADY" '.latency.p99_ms < 30000' "steady p99 blew the generous bound"

# ---- Overload phase: ~10x the steady rate into 6:12 watermarks.
# Shedding is the correct behavior here — what must NOT happen is a
# hard error or a total collapse of completions.
OVER="$BIN/fleet-overload.json"
"$BIN/cdcs-load" -targets "$PEERS" \
    -qps 120 -duration 5s -deadline 60s -report "$OVER" 2>>"$LOG" \
    || fail "overload cdcs-load run failed"
assert "$OVER" '.shed > 0' "overload phase never shed (watermarks not biting)"
assert "$OVER" '.completed > 0' "overload phase completed nothing"
assert "$OVER" '.errors == 0' "overload phase hit hard errors"
assert "$OVER" '.shed_rate < 1' "overload phase shed everything"
assert "$OVER" '.replicas | length == 3' "overload phase did not use all 3 replicas"
assert "$OVER" '.latency.p99_ms < 60000' "overload p99 blew the generous bound"

# ---- Past the degrade watermark, replicas hand non-owned workloads
# to their rendezvous owner: the fleet as a whole must have forwarded.
fwd=0
for port in $P1 $P2 $P3; do
    f=$(curl -fsS "http://127.0.0.1:$port/v1/fleet" | jq '.forwarded')
    fwd=$((fwd + f))
done
[ "$fwd" -gt 0 ] || fail "no replica ever forwarded a submission (total forwarded = $fwd)"

# ---- Distributed-tracing leg: push replica 1 past its degrade
# watermark, then submit traced probes until one is forwarded to its
# rendezvous owner. The propagated trace ID must then be readable from
# at least two replicas — the forwarder holds the serve/forward hop,
# the owner holds the serve/job execution — which is exactly what
# client-side stitching (`cdcs -server ... -trace`) glues together.
wait_drained() {
    for _ in $(seq 1 200); do
        busy=0
        for port in $P1 $P2 $P3; do
            l=$(curl -fsS "http://127.0.0.1:$port/v1/fleet" | jq '.load')
            [ "$l" -gt 0 ] && busy=1
        done
        [ "$busy" = 0 ] && return 0
        sleep 0.1
    done
    fail "fleet did not drain after the overload phase"
}
wait_drained

# Six slow fillers lift replica 1 exactly to the degrade watermark
# (load >= 6) without nearing shed (12), so probes forward, not drop.
# The fillers themselves are all admitted below the watermark, so none
# of them leaves the replica.
for i in $(seq 1 6); do
    curl -fsS -X POST "http://127.0.0.1:$P1/v1/synthesize" \
        -d '{"example":"mpeg4","workload":"filler","options":{"workers":1}}' >/dev/null \
        || fail "filler submit $i failed"
done

# Probe with distinct workloads until rendezvous routing picks another
# replica as owner; each probe carries a caller-minted traceparent so
# the whole hop chain joins a trace ID we know in advance.
fid=""
fowner=""
ftid=""
for i in $(seq 1 6); do
    tid=$(printf 'c0ffee%026d' "$i")
    probe=$(curl -fsS -X POST "http://127.0.0.1:$P1/v1/synthesize" \
        -H "traceparent: 00-$tid-00f067aa0ba902b7-01" \
        -d "{\"example\":\"wan\",\"workload\":\"probe-$i\",\"options\":{\"workers\":1}}") \
        || fail "probe $i submit failed"
    server=$(printf '%s' "$probe" | jq -r '.server // empty')
    if [ -n "$server" ] && [ "$server" != "http://127.0.0.1:$P1" ]; then
        fid=$(printf '%s' "$probe" | jq -r '.id')
        fowner=$server
        ftid=$tid
        break
    fi
done
[ -n "$fid" ] || fail "no probe was forwarded off replica 1 (6 workloads tried)"
[ "$(printf '%s' "$probe" | jq -r '.traceId')" = "$ftid" ] \
    || fail "forwarded probe lost the propagated trace ID: $probe"

state=""
for _ in $(seq 1 100); do
    state=$(curl -fsS "$fowner/v1/jobs/$fid" | jq -r '.state')
    [ "$state" = done ] && break
    [ "$state" = failed ] && fail "forwarded probe failed: $(curl -fsS "$fowner/v1/jobs/$fid")"
    sleep 0.1
done
[ "$state" = done ] || fail "forwarded probe did not finish (state: $state)"

holders=0
for port in $P1 $P2 $P3; do
    if curl -fsS "http://127.0.0.1:$port/v1/traces/$ftid" >/dev/null 2>&1; then
        holders=$((holders + 1))
    fi
done
[ "$holders" -ge 2 ] || fail "forwarded trace $ftid held by $holders replicas, want >= 2"
curl -fsS "http://127.0.0.1:$P1/v1/traces/$ftid" \
    | jq -e '[.. | objects | .name? // empty] | any(. == "serve/forward")' >/dev/null \
    || fail "forwarder's partial trace has no serve/forward hop"
curl -fsS "$fowner/v1/traces/$ftid" \
    | jq -e '[.. | objects | .name? // empty] | any(. == "serve/job")' >/dev/null \
    || fail "owner's partial trace has no serve/job span"

# ---- Graceful drain: every replica exits cleanly on SIGTERM.
for pid in $PIDS; do
    kill "$pid" 2>/dev/null || true
done
for pid in $PIDS; do
    i=0
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 150 ] && fail "replica $pid did not exit within 15s of SIGTERM"
        sleep 0.1
    done
done
trap - EXIT INT TERM

echo "fleet-smoke: OK (steady: $(jq -r '.completed' "$STEADY") completed;" \
    "overload: $(jq -r '.completed' "$OVER") completed," \
    "$(jq -r '.shed' "$OVER") shed, $fwd forwarded;" \
    "trace $ftid stitched across $holders replicas)"

#!/usr/bin/env sh
# End-to-end smoke test of a replica-aware cdcsd fleet driven by the
# cdcs-load traffic generator. Two modes:
#
#   fleet (default): start 3 replicas that know each other via
#     -self/-peers, run a steady-rate phase and then a deliberate
#     overload phase (tight -shed-watermarks, ~120 QPS), and
#     jq-assert the generator's JSON reports — zero hard errors, work
#     completed on all 3 replicas, p99 under a generous bound, shed
#     observed under overload but not runaway, and at least one peer
#     forward visible on the /v1/fleet endpoints.
#
#   quick: one replica, one short burst — the `make load` demo.
#
# Used by `make fleet-smoke` / `make load` and CI's fleet-smoke job.
# Requires curl and jq; uses POSIX sh only.
set -eu

MODE="${1:-fleet}"
BASE_PORT="${CDCS_FLEET_PORT:-18180}"
BIN="${BIN:-bin}"
LOG="$BIN/fleet-smoke.log"
PIDS=""

mkdir -p "$BIN"
go build -o "$BIN/cdcsd" ./cmd/cdcsd
go build -o "$BIN/cdcs-load" ./cmd/cdcs-load
: > "$LOG"

fail() {
    echo "fleet-smoke: FAIL: $1" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT INT TERM

wait_ready() {
    for _ in $(seq 1 50); do
        if curl -fsS "http://127.0.0.1:$1/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    fail "replica on port $1 never became ready"
}

# assert FILE JQ_EXPR DESCRIPTION — jq -e the report or die with it.
assert() {
    jq -e "$2" "$1" >/dev/null \
        || fail "$3 ($2 on $(cat "$1"))"
}

if [ "$MODE" = quick ]; then
    PORT=$BASE_PORT
    "$BIN/cdcsd" -addr "127.0.0.1:$PORT" -log-level warn >/dev/null 2>>"$LOG" &
    PIDS="$!"
    wait_ready "$PORT"
    REPORT="$BIN/load-report.json"
    "$BIN/cdcs-load" -targets "http://127.0.0.1:$PORT" \
        -qps 20 -duration 3s -deadline 30s -report "$REPORT" 2>>"$LOG" \
        || fail "cdcs-load run failed"
    assert "$REPORT" '.completed > 0' "no requests completed"
    assert "$REPORT" '.errors == 0' "hard errors against an idle daemon"
    assert "$REPORT" '.deadline_missed == 0' "deadline misses against an idle daemon"
    cat "$REPORT"
    echo "fleet-smoke: OK (quick: $(jq -r '.completed' "$REPORT") jobs completed)"
    exit 0
fi

[ "$MODE" = fleet ] || fail "unknown mode $MODE (want fleet or quick)"

# ---- Start 3 replicas with a shared membership list and tight
# watermarks so the overload phase actually sheds and forwards.
P1=$BASE_PORT
P2=$((BASE_PORT + 1))
P3=$((BASE_PORT + 2))
PEERS="http://127.0.0.1:$P1,http://127.0.0.1:$P2,http://127.0.0.1:$P3"
for port in $P1 $P2 $P3; do
    "$BIN/cdcsd" -addr "127.0.0.1:$port" -log-level warn \
        -max-jobs 2 -retain 1024 -shed-watermarks 6:12 \
        -self "http://127.0.0.1:$port" -peers "$PEERS" \
        >/dev/null 2>>"$LOG" &
    PIDS="$PIDS $!"
done
for port in $P1 $P2 $P3; do
    wait_ready "$port"
done

# Every replica must report the full membership.
for port in $P1 $P2 $P3; do
    n=$(curl -fsS "http://127.0.0.1:$port/v1/fleet" | jq '.peers | length')
    [ "$n" = 3 ] || fail "replica $port sees $n peers, want 3"
done

# ---- Steady phase: comfortably under capacity, nothing drops.
STEADY="$BIN/fleet-steady.json"
"$BIN/cdcs-load" -targets "$PEERS" \
    -qps 5 -duration 5s -deadline 60s -report "$STEADY" 2>>"$LOG" \
    || fail "steady cdcs-load run failed"
assert "$STEADY" '.completed > 0' "steady phase completed nothing"
assert "$STEADY" '.errors == 0' "steady phase hit hard errors"
assert "$STEADY" '.deadline_missed == 0' "steady phase missed deadlines"
assert "$STEADY" '.replicas | length == 3' "steady phase did not use all 3 replicas"
assert "$STEADY" '.balance > 0' "steady phase left a replica idle"
assert "$STEADY" '.latency.p99_ms < 30000' "steady p99 blew the generous bound"

# ---- Overload phase: ~10x the steady rate into 6:12 watermarks.
# Shedding is the correct behavior here — what must NOT happen is a
# hard error or a total collapse of completions.
OVER="$BIN/fleet-overload.json"
"$BIN/cdcs-load" -targets "$PEERS" \
    -qps 120 -duration 5s -deadline 60s -report "$OVER" 2>>"$LOG" \
    || fail "overload cdcs-load run failed"
assert "$OVER" '.shed > 0' "overload phase never shed (watermarks not biting)"
assert "$OVER" '.completed > 0' "overload phase completed nothing"
assert "$OVER" '.errors == 0' "overload phase hit hard errors"
assert "$OVER" '.shed_rate < 1' "overload phase shed everything"
assert "$OVER" '.replicas | length == 3' "overload phase did not use all 3 replicas"
assert "$OVER" '.latency.p99_ms < 60000' "overload p99 blew the generous bound"

# ---- Past the degrade watermark, replicas hand non-owned workloads
# to their rendezvous owner: the fleet as a whole must have forwarded.
fwd=0
for port in $P1 $P2 $P3; do
    f=$(curl -fsS "http://127.0.0.1:$port/v1/fleet" | jq '.forwarded')
    fwd=$((fwd + f))
done
[ "$fwd" -gt 0 ] || fail "no replica ever forwarded a submission (total forwarded = $fwd)"

# ---- Graceful drain: every replica exits cleanly on SIGTERM.
for pid in $PIDS; do
    kill "$pid" 2>/dev/null || true
done
for pid in $PIDS; do
    i=0
    while kill -0 "$pid" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 150 ] && fail "replica $pid did not exit within 15s of SIGTERM"
        sleep 0.1
    done
done
trap - EXIT INT TERM

echo "fleet-smoke: OK (steady: $(jq -r '.completed' "$STEADY") completed;" \
    "overload: $(jq -r '.completed' "$OVER") completed," \
    "$(jq -r '.shed' "$OVER") shed, $fwd forwarded)"

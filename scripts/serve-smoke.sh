#!/usr/bin/env sh
# End-to-end smoke test of the cdcsd serving daemon: build it, start
# it on a free port, wait for readiness, submit the built-in wan
# example, follow the job to completion, and assert that the result is
# optimal, that the SSE stream carries incumbent events, and that
# /metrics exposes the algorithm counters in Prometheus text format.
# Used by `make serve-smoke` and CI's serve-smoke job. Requires curl;
# uses no other tooling beyond the Go toolchain and POSIX sh.
set -eu

PORT="${CDCSD_PORT:-18080}"
ADDR="127.0.0.1:$PORT"
BIN="${BIN:-bin}"
LOG="$BIN/cdcsd-smoke.log"

mkdir -p "$BIN"
go build -o "$BIN/cdcsd" ./cmd/cdcsd

"$BIN/cdcsd" -addr "$ADDR" -log-level debug >/dev/null 2>"$LOG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $1" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

# Readiness: poll /readyz until the daemon accepts connections.
ready=0
for _ in $(seq 1 50); do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
[ "$ready" = 1 ] || fail "/readyz never became ready"

# Liveness carries the build version.
curl -fsS "http://$ADDR/healthz" | grep -q '"status": *"ok"' \
    || fail "/healthz did not report ok"

# Submit the wan example and extract the job id without jq.
job=$(curl -fsS -X POST "http://$ADDR/v1/synthesize" \
    -d '{"example":"wan","options":{"workers":2}}')
id=$(printf '%s' "$job" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || fail "no job id in submit response: $job"

# Follow the job to a terminal state.
state=""
for _ in $(seq 1 100); do
    state=$(curl -fsS "http://$ADDR/v1/jobs/$id" \
        | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [ "$state" = done ] && break
    [ "$state" = failed ] && fail "job failed: $(curl -fsS "http://$ADDR/v1/jobs/$id")"
    sleep 0.1
done
[ "$state" = done ] || fail "job did not finish (state: $state)"

result=$(curl -fsS "http://$ADDR/v1/jobs/$id")
printf '%s' "$result" | grep -q '"optimal": *true' \
    || fail "job result is not optimal: $result"

# The SSE replay must contain the run bracket and incumbent events.
events=$(curl -fsS -N --max-time 10 "http://$ADDR/v1/jobs/$id/events")
printf '%s' "$events" | grep -q '^event: run_start$' || fail "SSE stream has no run_start"
printf '%s' "$events" | grep -q '^event: incumbent$' || fail "SSE stream has no incumbent event"
printf '%s' "$events" | grep -q '^event: run_end$'   || fail "SSE stream has no run_end"

# /metrics speaks Prometheus text format and carries the counters.
metrics=$(curl -fsS "http://$ADDR/metrics")
printf '%s\n' "$metrics" | grep -q '^# TYPE ucp_incumbents_total counter$' \
    || fail "/metrics has no ucp_incumbents_total TYPE line"
printf '%s\n' "$metrics" | grep -q '^serve_jobs_completed_total 1$' \
    || fail "/metrics did not count the completed job"
printf '%s\n' "$metrics" | grep -Eq '^ucp_nodes_total [0-9]+$' \
    || fail "/metrics has no ucp_nodes_total sample"

# Graceful shutdown: SIGTERM drains and the process exits cleanly.
kill "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon did not exit within 10s of SIGTERM"
    sleep 0.1
done
trap - EXIT INT TERM

echo "serve-smoke: OK (job $id optimal, SSE incumbents seen, metrics scraped)"

#!/usr/bin/env sh
# End-to-end smoke test of the cdcsd serving daemon: build it, start
# it on a free port, wait for readiness, submit the built-in wan
# example, follow the job to completion, and assert that the result is
# optimal, that the SSE stream carries incumbent events, and that
# /metrics exposes the algorithm counters in Prometheus text format.
# A second leg proves crash recovery: a daemon with -data-dir is
# kill -9'd mid-job, restarted on the same directory, and must serve
# the finished job's result unchanged while re-running the
# interrupted job marked "restarted". Batch legs ride along in both:
# a 3-graph POST /v1/batch must yield 3 results, and a batch caught
# by the kill -9 must come back with its finished members' results
# intact and only the interrupted member re-run. A trace leg asserts
# the finished job's span forest on GET /v1/jobs/{id}/trace: rooted at
# serve/job with the admission, queue-wait, and synth phase spans
# nested below, plus a Chrome-format rendering of the same tree.
# Used by `make serve-smoke` and CI's serve-smoke job. Requires curl
# and jq; uses no other tooling beyond the Go toolchain and POSIX sh.
set -eu

PORT="${CDCSD_PORT:-18080}"
ADDR="127.0.0.1:$PORT"
BIN="${BIN:-bin}"
LOG="$BIN/cdcsd-smoke.log"

mkdir -p "$BIN"
go build -o "$BIN/cdcsd" ./cmd/cdcsd

"$BIN/cdcsd" -addr "$ADDR" -log-level debug >/dev/null 2>"$LOG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $1" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

# Readiness: poll /readyz until the daemon accepts connections.
wait_ready() {
    for _ in $(seq 1 50); do
        if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    fail "/readyz never became ready"
}
wait_ready

# Liveness carries the build version.
curl -fsS "http://$ADDR/healthz" | grep -q '"status": *"ok"' \
    || fail "/healthz did not report ok"

# Submit the wan example and extract the job id without jq.
job=$(curl -fsS -X POST "http://$ADDR/v1/synthesize" \
    -d '{"example":"wan","options":{"workers":2}}')
id=$(printf '%s' "$job" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || fail "no job id in submit response: $job"

# Follow the job to a terminal state.
state=""
for _ in $(seq 1 100); do
    state=$(curl -fsS "http://$ADDR/v1/jobs/$id" \
        | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [ "$state" = done ] && break
    [ "$state" = failed ] && fail "job failed: $(curl -fsS "http://$ADDR/v1/jobs/$id")"
    sleep 0.1
done
[ "$state" = done ] || fail "job did not finish (state: $state)"

result=$(curl -fsS "http://$ADDR/v1/jobs/$id")
printf '%s' "$result" | grep -q '"optimal": *true' \
    || fail "job result is not optimal: $result"

# The SSE replay must contain the run bracket and incumbent events.
events=$(curl -fsS -N --max-time 10 "http://$ADDR/v1/jobs/$id/events")
printf '%s' "$events" | grep -q '^event: run_start$' || fail "SSE stream has no run_start"
printf '%s' "$events" | grep -q '^event: incumbent$' || fail "SSE stream has no incumbent event"
printf '%s' "$events" | grep -q '^event: run_end$'   || fail "SSE stream has no run_end"

# ---- Trace leg: the finished job's span forest is rooted at
# serve/job and carries the serving-side and synthesis phase spans.
trace=$(curl -fsS "http://$ADDR/v1/jobs/$id/trace")
printf '%s' "$trace" | jq -e '.traceId | test("^[0-9a-f]{32}$")' >/dev/null \
    || fail "trace has no 128-bit traceId: $trace"
printf '%s' "$trace" | jq -e '.spans[0].name == "serve/job"' >/dev/null \
    || fail "trace is not rooted at serve/job: $trace"
for span in serve/admission serve/queue-wait synth/run p2p/plan merging/enumerate synth/solve; do
    printf '%s' "$trace" \
        | jq -e --arg n "$span" '[.. | objects | .name? // empty] | any(. == $n)' >/dev/null \
        || fail "trace has no $span span: $trace"
done
curl -fsS "http://$ADDR/v1/jobs/$id/trace?format=chrome" \
    | jq -e '[.[] | select(.ph == "X")] | length > 0' >/dev/null \
    || fail "chrome-format trace has no complete events"

# /metrics speaks Prometheus text format and carries the counters.
metrics=$(curl -fsS "http://$ADDR/metrics")
printf '%s\n' "$metrics" | grep -q '^# TYPE ucp_incumbents_total counter$' \
    || fail "/metrics has no ucp_incumbents_total TYPE line"
printf '%s\n' "$metrics" | grep -q '^serve_jobs_completed_total 1$' \
    || fail "/metrics did not count the completed job"
printf '%s\n' "$metrics" | grep -Eq '^ucp_nodes_total [0-9]+$' \
    || fail "/metrics has no ucp_nodes_total sample"

# ---- Batch leg: three named graphs in one request, three results.
batch=$(curl -fsS -X POST "http://$ADDR/v1/batch" \
    -d '{"workload":"smoke-batch","graphs":[{"name":"a","example":"wan","options":{"workers":1}},{"name":"b","example":"lan","options":{"workers":1}},{"name":"c","example":"mcm","options":{"workers":1}}]}')
bid=$(printf '%s' "$batch" | sed -n 's/.*"id": *"\(b-[0-9]*\)".*/\1/p' | head -n 1)
[ -n "$bid" ] || fail "no batch id in response: $batch"
bjson=""
bdone=""
for _ in $(seq 1 100); do
    bjson=$(curl -fsS "http://$ADDR/v1/batch/$bid")
    if printf '%s' "$bjson" | grep -q '"done": *true'; then
        bdone=yes
        break
    fi
    sleep 0.1
done
[ "$bdone" = yes ] || fail "batch $bid did not finish: $bjson"
n=$(printf '%s' "$bjson" | grep -c '"state": *"done"') || true
[ "$n" -eq 3 ] || fail "batch $bid has $n done members, want 3: $bjson"
curl -fsS "http://$ADDR/metrics" | grep -q '^serve_batch_members_total 3$' \
    || fail "/metrics did not count the 3 batch members"

# Graceful shutdown: SIGTERM drains and the process exits cleanly.
kill "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon did not exit within 10s of SIGTERM"
    sleep 0.1
done
trap - EXIT INT TERM

# ---- Crash-recovery leg: kill -9 mid-job, restart on the same data dir.
DATA="$BIN/cdcsd-smoke-data"
rm -rf "$DATA"

"$BIN/cdcsd" -addr "$ADDR" -log-level debug -data-dir "$DATA" >/dev/null 2>>"$LOG" &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true' EXIT INT TERM
wait_ready

# Job A finishes before the crash; its result must survive verbatim.
jobA=$(curl -fsS -X POST "http://$ADDR/v1/synthesize" \
    -d '{"example":"wan","options":{"workers":2}}')
idA=$(printf '%s' "$jobA" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$idA" ] || fail "no job id in durable submit response: $jobA"
state=""
for _ in $(seq 1 100); do
    state=$(curl -fsS "http://$ADDR/v1/jobs/$idA" \
        | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [ "$state" = done ] && break
    sleep 0.1
done
[ "$state" = done ] || fail "durable job A did not finish (state: $state)"
costA=$(curl -fsS "http://$ADDR/v1/jobs/$idA" | sed -n 's/.*"cost": *\([0-9.]*\).*/\1/p')

# A batch with two fast members and one slow one: the fast members
# finish before the crash, the slow one is caught mid-run. Submitted
# while both job slots are free so the fast members cannot starve
# behind a pair of big jobs.
cbatch=$(curl -fsS -X POST "http://$ADDR/v1/batch" \
    -d '{"workload":"crash-batch","graphs":[{"name":"fast-wan","example":"wan","options":{"workers":1}},{"name":"fast-lan","example":"lan","options":{"workers":1}},{"name":"slow","example":"mpeg4","options":{"workers":1}}]}')
cbid=$(printf '%s' "$cbatch" | sed -n 's/.*"id": *"\(b-[0-9]*\)".*/\1/p' | head -n 1)
[ -n "$cbid" ] || fail "no batch id in durable batch response: $cbatch"
fastdone=""
for _ in $(seq 1 300); do
    n=$(curl -fsS "http://$ADDR/v1/batch/$cbid" | grep -c '"state": *"done"') || true
    if [ "$n" -ge 2 ]; then
        fastdone=yes
        break
    fi
    sleep 0.1
done
[ "$fastdone" = yes ] || fail "fast batch members did not finish before the crash"

# Job B is the big instance on one worker (~seconds): the kill below
# lands mid-run, so the restarted daemon must re-queue it.
jobB=$(curl -fsS -X POST "http://$ADDR/v1/synthesize" \
    -d '{"example":"mpeg4","options":{"workers":1}}')
idB=$(printf '%s' "$jobB" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$idB" ] || fail "no job id in durable submit response: $jobB"

kill -9 "$PID"
wait "$PID" 2>/dev/null || true

"$BIN/cdcsd" -addr "$ADDR" -log-level debug -data-dir "$DATA" >/dev/null 2>>"$LOG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT INT TERM
wait_ready

# The finished job must come back queryable with the same result.
resultA=$(curl -fsS "http://$ADDR/v1/jobs/$idA")
printf '%s' "$resultA" | grep -q '"state": *"done"' \
    || fail "finished job A not restored after kill -9: $resultA"
printf '%s' "$resultA" | grep -q "\"cost\": *$costA" \
    || fail "restored job A cost changed (want $costA): $resultA"
# Its SSE replay still serves a complete bracket.
eventsA=$(curl -fsS -N --max-time 10 "http://$ADDR/v1/jobs/$idA/events")
printf '%s' "$eventsA" | grep -q '^event: run_start$' || fail "restored SSE has no run_start"
printf '%s' "$eventsA" | grep -q '^event: run_end$'   || fail "restored SSE has no run_end"

# The interrupted job must re-run to completion, marked restarted.
state=""
for _ in $(seq 1 300); do
    state=$(curl -fsS "http://$ADDR/v1/jobs/$idB" \
        | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [ "$state" = done ] && break
    [ "$state" = failed ] && fail "re-queued job B failed: $(curl -fsS "http://$ADDR/v1/jobs/$idB")"
    sleep 0.1
done
[ "$state" = done ] || fail "re-queued job B did not finish (state: $state)"
curl -fsS "http://$ADDR/v1/jobs/$idB" | grep -q '"restarted": *true' \
    || fail "re-run job B is not marked restarted"

# The batch must survive the crash: restored envelope, finished
# members untouched, only the interrupted member re-run.
bjson=$(curl -fsS "http://$ADDR/v1/batch/$cbid") \
    || fail "batch $cbid not restored after kill -9"
printf '%s' "$bjson" | grep -q '"restored": *true' \
    || fail "restored batch is not marked restored: $bjson"
bdone=""
for _ in $(seq 1 300); do
    bjson=$(curl -fsS "http://$ADDR/v1/batch/$cbid")
    if printf '%s' "$bjson" | grep -q '"done": *true'; then
        bdone=yes
        break
    fi
    sleep 0.1
done
[ "$bdone" = yes ] || fail "restored batch did not finish: $bjson"
n=$(printf '%s' "$bjson" | grep -c '"state": *"done"') || true
[ "$n" -eq 3 ] || fail "restored batch has $n done members, want 3: $bjson"
n=$(printf '%s' "$bjson" | grep -c '"restarted": *true') || true
[ "$n" -eq 1 ] || fail "restored batch has $n restarted members, want exactly the interrupted one: $bjson"

# The durability and admission instruments are on /metrics.
metrics=$(curl -fsS "http://$ADDR/metrics")
printf '%s\n' "$metrics" | grep -Eq '^durable_wal_records_total [0-9]+$' \
    || fail "/metrics has no durable_wal_records_total sample"
printf '%s\n' "$metrics" | grep -Eq '^serve_shed_accepted_total [0-9]+$' \
    || fail "/metrics has no serve_shed_accepted_total sample"

kill "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "restarted daemon did not exit within 10s of SIGTERM"
    sleep 0.1
done
trap - EXIT INT TERM

echo "serve-smoke: OK (job $id optimal, batch $bid complete, SSE incumbents seen, trace spans asserted, metrics scraped; crash recovery: $idA restored, $idB re-run, batch $cbid survived)"

#!/usr/bin/env sh
# End-to-end smoke test of the cdcsd serving daemon: build it, start
# it on a free port, wait for readiness, submit the built-in wan
# example, follow the job to completion, and assert that the result is
# optimal, that the SSE stream carries incumbent events, and that
# /metrics exposes the algorithm counters in Prometheus text format.
# A second leg proves crash recovery: a daemon with -data-dir is
# kill -9'd mid-job, restarted on the same directory, and must serve
# the finished job's result unchanged while re-running the
# interrupted job marked "restarted".
# Used by `make serve-smoke` and CI's serve-smoke job. Requires curl;
# uses no other tooling beyond the Go toolchain and POSIX sh.
set -eu

PORT="${CDCSD_PORT:-18080}"
ADDR="127.0.0.1:$PORT"
BIN="${BIN:-bin}"
LOG="$BIN/cdcsd-smoke.log"

mkdir -p "$BIN"
go build -o "$BIN/cdcsd" ./cmd/cdcsd

"$BIN/cdcsd" -addr "$ADDR" -log-level debug >/dev/null 2>"$LOG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $1" >&2
    echo "--- daemon log ---" >&2
    cat "$LOG" >&2 || true
    exit 1
}

# Readiness: poll /readyz until the daemon accepts connections.
wait_ready() {
    for _ in $(seq 1 50); do
        if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    fail "/readyz never became ready"
}
wait_ready

# Liveness carries the build version.
curl -fsS "http://$ADDR/healthz" | grep -q '"status": *"ok"' \
    || fail "/healthz did not report ok"

# Submit the wan example and extract the job id without jq.
job=$(curl -fsS -X POST "http://$ADDR/v1/synthesize" \
    -d '{"example":"wan","options":{"workers":2}}')
id=$(printf '%s' "$job" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || fail "no job id in submit response: $job"

# Follow the job to a terminal state.
state=""
for _ in $(seq 1 100); do
    state=$(curl -fsS "http://$ADDR/v1/jobs/$id" \
        | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [ "$state" = done ] && break
    [ "$state" = failed ] && fail "job failed: $(curl -fsS "http://$ADDR/v1/jobs/$id")"
    sleep 0.1
done
[ "$state" = done ] || fail "job did not finish (state: $state)"

result=$(curl -fsS "http://$ADDR/v1/jobs/$id")
printf '%s' "$result" | grep -q '"optimal": *true' \
    || fail "job result is not optimal: $result"

# The SSE replay must contain the run bracket and incumbent events.
events=$(curl -fsS -N --max-time 10 "http://$ADDR/v1/jobs/$id/events")
printf '%s' "$events" | grep -q '^event: run_start$' || fail "SSE stream has no run_start"
printf '%s' "$events" | grep -q '^event: incumbent$' || fail "SSE stream has no incumbent event"
printf '%s' "$events" | grep -q '^event: run_end$'   || fail "SSE stream has no run_end"

# /metrics speaks Prometheus text format and carries the counters.
metrics=$(curl -fsS "http://$ADDR/metrics")
printf '%s\n' "$metrics" | grep -q '^# TYPE ucp_incumbents_total counter$' \
    || fail "/metrics has no ucp_incumbents_total TYPE line"
printf '%s\n' "$metrics" | grep -q '^serve_jobs_completed_total 1$' \
    || fail "/metrics did not count the completed job"
printf '%s\n' "$metrics" | grep -Eq '^ucp_nodes_total [0-9]+$' \
    || fail "/metrics has no ucp_nodes_total sample"

# Graceful shutdown: SIGTERM drains and the process exits cleanly.
kill "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon did not exit within 10s of SIGTERM"
    sleep 0.1
done
trap - EXIT INT TERM

# ---- Crash-recovery leg: kill -9 mid-job, restart on the same data dir.
DATA="$BIN/cdcsd-smoke-data"
rm -rf "$DATA"

"$BIN/cdcsd" -addr "$ADDR" -log-level debug -data-dir "$DATA" >/dev/null 2>>"$LOG" &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true' EXIT INT TERM
wait_ready

# Job A finishes before the crash; its result must survive verbatim.
jobA=$(curl -fsS -X POST "http://$ADDR/v1/synthesize" \
    -d '{"example":"wan","options":{"workers":2}}')
idA=$(printf '%s' "$jobA" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$idA" ] || fail "no job id in durable submit response: $jobA"
state=""
for _ in $(seq 1 100); do
    state=$(curl -fsS "http://$ADDR/v1/jobs/$idA" \
        | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [ "$state" = done ] && break
    sleep 0.1
done
[ "$state" = done ] || fail "durable job A did not finish (state: $state)"
costA=$(curl -fsS "http://$ADDR/v1/jobs/$idA" | sed -n 's/.*"cost": *\([0-9.]*\).*/\1/p')

# Job B is the big instance on one worker (~seconds): the kill below
# lands mid-run, so the restarted daemon must re-queue it.
jobB=$(curl -fsS -X POST "http://$ADDR/v1/synthesize" \
    -d '{"example":"mpeg4","options":{"workers":1}}')
idB=$(printf '%s' "$jobB" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$idB" ] || fail "no job id in durable submit response: $jobB"

kill -9 "$PID"
wait "$PID" 2>/dev/null || true

"$BIN/cdcsd" -addr "$ADDR" -log-level debug -data-dir "$DATA" >/dev/null 2>>"$LOG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT INT TERM
wait_ready

# The finished job must come back queryable with the same result.
resultA=$(curl -fsS "http://$ADDR/v1/jobs/$idA")
printf '%s' "$resultA" | grep -q '"state": *"done"' \
    || fail "finished job A not restored after kill -9: $resultA"
printf '%s' "$resultA" | grep -q "\"cost\": *$costA" \
    || fail "restored job A cost changed (want $costA): $resultA"
# Its SSE replay still serves a complete bracket.
eventsA=$(curl -fsS -N --max-time 10 "http://$ADDR/v1/jobs/$idA/events")
printf '%s' "$eventsA" | grep -q '^event: run_start$' || fail "restored SSE has no run_start"
printf '%s' "$eventsA" | grep -q '^event: run_end$'   || fail "restored SSE has no run_end"

# The interrupted job must re-run to completion, marked restarted.
state=""
for _ in $(seq 1 300); do
    state=$(curl -fsS "http://$ADDR/v1/jobs/$idB" \
        | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [ "$state" = done ] && break
    [ "$state" = failed ] && fail "re-queued job B failed: $(curl -fsS "http://$ADDR/v1/jobs/$idB")"
    sleep 0.1
done
[ "$state" = done ] || fail "re-queued job B did not finish (state: $state)"
curl -fsS "http://$ADDR/v1/jobs/$idB" | grep -q '"restarted": *true' \
    || fail "re-run job B is not marked restarted"

# The durability and admission instruments are on /metrics.
metrics=$(curl -fsS "http://$ADDR/metrics")
printf '%s\n' "$metrics" | grep -Eq '^durable_wal_records_total [0-9]+$' \
    || fail "/metrics has no durable_wal_records_total sample"
printf '%s\n' "$metrics" | grep -Eq '^serve_shed_accepted_total [0-9]+$' \
    || fail "/metrics has no serve_shed_accepted_total sample"

kill "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "restarted daemon did not exit within 10s of SIGTERM"
    sleep 0.1
done
trap - EXIT INT TERM

echo "serve-smoke: OK (job $id optimal, SSE incumbents seen, metrics scraped; crash recovery: $idA restored, $idB re-run)"

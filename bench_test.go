// Top-level benchmarks: one per table and figure of the paper's
// evaluation (E1–E6) plus the repository's extension studies (E7–E8).
// Each benchmark re-derives the artifact and fails if the reproduced
// values drift from the published ones, so `go test -bench=.` doubles as
// the reproduction acceptance run. cmd/cdcs-bench prints the same
// artifacts with full detail.
package repro_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"repro/internal/baseline"
	"repro/internal/experiments"
	"repro/internal/flowsim"
	"repro/internal/impl"
	"repro/internal/lid"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/p2p"
	"repro/internal/place"
	"repro/internal/synth"
	"repro/internal/workloads"
)

// BenchmarkTable1GammaMatrix regenerates the Constrained Distance Sum
// Matrix Γ of Table 1 (experiment E1).
func BenchmarkTable1GammaMatrix(b *testing.B) {
	cg := workloads.WAN()
	want := workloads.PaperTable1()
	for i := 0; i < b.N; i++ {
		gamma := merging.Gamma(cg)
		for r := 0; r < 8; r++ {
			for c := r + 1; c < 8; c++ {
				if math.Abs(gamma.At(r, c)-want[r][c]) > 0.03 {
					b.Fatalf("Γ(a%d,a%d) = %.3f, published %.2f", r+1, c+1, gamma.At(r, c), want[r][c])
				}
			}
		}
	}
}

// BenchmarkTable2DeltaMatrix regenerates the Merging Distance Sum
// Matrix Δ of Table 2 (experiment E2).
func BenchmarkTable2DeltaMatrix(b *testing.B) {
	cg := workloads.WAN()
	want := workloads.PaperTable2()
	for i := 0; i < b.N; i++ {
		delta := merging.Delta(cg)
		for r := 0; r < 8; r++ {
			for c := r + 1; c < 8; c++ {
				if math.Abs(delta.At(r, c)-want[r][c]) > 0.03 {
					b.Fatalf("Δ(a%d,a%d) = %.3f, published %.2f", r+1, c+1, delta.At(r, c), want[r][c])
				}
			}
		}
	}
}

// BenchmarkFig3ConstraintGraph rebuilds the WAN constraint graph of
// Figure 3 (experiment E3).
func BenchmarkFig3ConstraintGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cg := workloads.WAN()
		if cg.NumChannels() != 8 {
			b.Fatalf("channels = %d", cg.NumChannels())
		}
		if err := cg.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2CandidateGeneration runs the Figure 2 candidate
// enumeration on the WAN instance and checks the Section 4 counts
// (experiment E4: 13 two-way, 21 three-way, 16 four-way).
func BenchmarkFig2CandidateGeneration(b *testing.B) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	paper := workloads.PaperCandidateCounts()
	for i := 0; i < b.N; i++ {
		res, err := merging.Enumerate(cg, lib, merging.Options{Policy: merging.MaxIndexRef})
		if err != nil {
			b.Fatal(err)
		}
		for k := 2; k <= 4; k++ {
			if res.Count(k) != paper[k] {
				b.Fatalf("k=%d candidates = %d, paper %d", k, res.Count(k), paper[k])
			}
		}
	}
}

// BenchmarkExample1WANSynthesis runs the full synthesis of Example 1 and
// checks the Figure 4 optimum (experiment E5: merge {a4, a5, a6} on an
// optical trunk, radio elsewhere).
func BenchmarkExample1WANSynthesis(b *testing.B) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	for i := 0; i < b.N; i++ {
		ig, rep, err := synth.Synthesize(cg, lib, synth.Options{
			Merging: merging.Options{Policy: merging.MaxIndexRef},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := ig.Verify(impl.VerifyOptions{}); err != nil {
			b.Fatal(err)
		}
		merged := 0
		for _, c := range rep.SelectedCandidates() {
			if c.Kind == "merge" {
				merged++
				if len(c.Channels) != 3 || c.Merge.TrunkPlan.Link.Name != "optical" {
					b.Fatalf("unexpected merge %v over %s", c.Channels, c.Merge.TrunkPlan.Link.Name)
				}
			}
		}
		if merged != 1 || rep.Cost >= rep.P2PCost {
			b.Fatalf("architecture shape wrong: %d merges, cost %v vs p2p %v",
				merged, rep.Cost, rep.P2PCost)
		}
	}
}

// BenchmarkExample2MPEG4 runs the Example 2 repeater insertion and
// checks the Figure 5 total (experiment E6: 55 repeaters).
func BenchmarkExample2MPEG4(b *testing.B) {
	cg := workloads.MPEG4()
	lib := workloads.MPEG4Technology().Library()
	for i := 0; i < b.N; i++ {
		ig, _, err := p2p.Synthesize(cg, lib, p2p.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if got := ig.NumCommVertices(); got != workloads.MPEG4ExpectedRepeaters {
			b.Fatalf("repeaters = %d, want %d", got, workloads.MPEG4ExpectedRepeaters)
		}
	}
}

// BenchmarkFlowSimulation runs the E9 traffic validation of the
// synthesized Figure 4 architecture.
func BenchmarkFlowSimulation(b *testing.B) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	ig, _, err := synth.Synthesize(cg, lib, synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := flowsim.Simulate(ig, flowsim.Config{Ticks: 400})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllSatisfied() {
			b.Fatal("synthesized architecture starved a channel")
		}
	}
}

// BenchmarkLIDSweep runs the E10 deep-sub-micron sweep of the MPEG-4
// instance under the buffer/latch cost function.
func BenchmarkLIDSweep(b *testing.B) {
	cg := workloads.MPEG4()
	for i := 0; i < b.N; i++ {
		for _, gen := range lid.DSMGenerations() {
			rep, err := lid.Analyze(cg, lid.ParamsFor(gen, 4))
			if err != nil {
				b.Fatal(err)
			}
			if gen.Name == "0.18um" &&
				(rep.TotalBuffers != workloads.MPEG4ExpectedRepeaters || !rep.SingleCycle()) {
				b.Fatalf("0.18um sweep point wrong: %+v", rep)
			}
		}
	}
}

// BenchmarkBaselineComparison runs the E13 exact-vs-agglomerative
// comparison on the WAN instance and asserts the headline separation:
// greedy stays at point-to-point while the exact flow saves ~28%.
func BenchmarkBaselineComparison(b *testing.B) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	for i := 0; i < b.N; i++ {
		_, greedy, err := baseline.Synthesize(cg, lib, baseline.Options{})
		if err != nil {
			b.Fatal(err)
		}
		_, exact, err := synth.Synthesize(cg, lib, synth.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if greedy.Merges != 0 || exact.Cost >= greedy.Cost {
			b.Fatalf("separation lost: greedy merges=%d, exact %v vs greedy %v",
				greedy.Merges, exact.Cost, greedy.Cost)
		}
	}
}

// BenchmarkAblationPruning measures candidate enumeration with all
// prunes against no prunes on the WAN instance (experiment E7's fast
// core; the full sweep lives in cmd/cdcs-bench -exp ablation).
func BenchmarkAblationPruning(b *testing.B) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := merging.Enumerate(cg, lib, merging.Options{Policy: merging.MaxIndexRef}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unpruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := merging.Enumerate(cg, lib, merging.Options{
				DisableLemma31: true, DisableLemma32: true,
				DisableTheorem31: true, DisableTheorem32: true,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScaling synthesizes one random clustered instance per size
// (experiment E8's core loop; the full sweep with greedy comparison
// lives in cmd/cdcs-bench -exp scaling).
func BenchmarkScaling(b *testing.B) {
	lib := workloads.WANLibrary()
	for _, n := range []int{6, 10} {
		cg := workloads.RandomWAN(workloads.RandomWANConfig{
			Seed: int64(1000 + n), Clusters: 3, Channels: n,
		})
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, rep, err := synth.Synthesize(cg, lib, synth.Options{
					Merging: merging.Options{Policy: merging.MaxIndexRef},
				})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Cost > rep.P2PCost+1e-9 {
					b.Fatalf("cost %v exceeds p2p %v", rep.Cost, rep.P2PCost)
				}
			}
		})
	}
}

func sizeName(n int) string {
	return "A" + string(rune('0'+n/10)) + string(rune('0'+n%10))
}

// BenchmarkPriceParallel measures the full synthesis — dominated by
// Step 1c candidate pricing — at one worker versus all cores, on the
// paper's WAN instance (the Table 1/Table 2 workload) and on a denser
// random clustered instance. The parallel/serial ratio is the headline
// number; correctness of the parallel run is covered by
// synth.TestParallelPricingEquivalence.
func BenchmarkPriceParallel(b *testing.B) {
	lib := workloads.WANLibrary()
	instances := []struct {
		name string
		cg   *model.ConstraintGraph
	}{
		{"table2-wan", workloads.WAN()},
		{"random-10ch", workloads.RandomWAN(workloads.RandomWANConfig{
			Seed: 42, Clusters: 3, Channels: 10,
		})},
	}
	// On a single-core runner the parallel leg still exercises the pool
	// (two goroutines) and the ratio degenerates to ~1×; the ≥2× speedup
	// claim is for 4+ core machines.
	parallel := runtime.NumCPU()
	if parallel < 2 {
		parallel = 2
	}
	for _, inst := range instances {
		cg := inst.cg
		for _, workers := range []int{1, parallel} {
			b.Run(inst.name+"/workers="+fmt.Sprint(workers), func(b *testing.B) {
				var serialRef *synth.Report
				for i := 0; i < b.N; i++ {
					_, rep, err := synth.Synthesize(cg, lib, synth.Options{
						Merging: merging.Options{Policy: merging.MaxIndexRef},
						Workers: workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					if serialRef == nil {
						serialRef = rep
					} else if rep.Cost != serialRef.Cost {
						b.Fatalf("cost drifted across runs: %v vs %v", rep.Cost, serialRef.Cost)
					}
				}
				if serialRef != nil {
					b.ReportMetric(serialRef.PlanCache.HitRate(), "cache-hit-rate")
				}
			})
		}
	}
}

// BenchmarkPricingAllocs measures steady-state candidate pricing on the
// WAN instance with a warm planner memo and placement scratch,
// reporting allocations per priced candidate (the number the checked-in
// budget in internal/synth's alloc tests pins). ReportAllocs covers the
// whole loop; allocs/candidate is the per-unit view.
func BenchmarkPricingAllocs(b *testing.B) {
	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	enum, err := merging.Enumerate(cg, lib, merging.Options{Policy: merging.MaxIndexRef})
	if err != nil {
		b.Fatal(err)
	}
	var sets [][]model.ChannelID
	for k := 2; k < len(enum.ByK); k++ {
		sets = append(sets, enum.ByK[k]...)
	}
	opt := place.Options{Planner: p2p.NewPlanner(lib), Scratch: &place.Scratch{}}
	for _, set := range sets { // warm memo and scratch
		if _, err := place.Optimize(cg, lib, set, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, set := range sets {
			if _, err := place.Optimize(cg, lib, set, opt); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(sets)), "candidates/op")
}

// TestAllExperimentsPass runs the complete experiment suite once; this
// is the repository's reproduction acceptance test.
func TestAllExperimentsPass(t *testing.T) {
	outcomes := []experiments.Outcome{
		experiments.Table1(),
		experiments.Table2(),
		experiments.Fig3(),
		experiments.Candidates(),
		experiments.Fig4(),
		experiments.Fig5(),
		experiments.FlowValidation(),
		experiments.LIDSweep(),
		experiments.BandwidthSweep(),
		experiments.LANCaseStudy(),
		experiments.BaselineComparison(),
		experiments.SteinerGap(),
	}
	if !testing.Short() {
		outcomes = append(outcomes, experiments.Scaling([]int{4, 8}))
	}
	for _, o := range outcomes {
		if !o.Passed() {
			t.Errorf("%s (%s) failed:\n%+v", o.ID, o.Title, o.Records)
		}
	}
}

GO      ?= go
BIN     := bin
VETTOOL := $(CURDIR)/$(BIN)/cdcsvet

.PHONY: all build test race vet lint tools clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Standard toolchain vet.
vet:
	$(GO) vet ./...

# Build the repository's analyzer suite (see docs/LINT.md).
tools:
	$(GO) build -o $(VETTOOL) ./cmd/cdcsvet

# Run the cdcsvet analyzers over every package, test files included.
lint: tools
	$(GO) vet -vettool=$(VETTOOL) ./...

clean:
	rm -rf $(BIN)

GO      ?= go
BIN     := bin
VETTOOL := $(CURDIR)/$(BIN)/cdcsvet

.PHONY: all build test race vet lint lint-self tools bench-gate bench-seed bench-alloc trace-example trace-smoke serve-smoke fleet-smoke load clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Standard toolchain vet.
vet:
	$(GO) vet ./...

# Build the repository's analyzer suite (see docs/LINT.md).
tools:
	$(GO) build -o $(VETTOOL) ./cmd/cdcsvet

# Run the cdcsvet analyzers over every package, test files included.
lint: tools
	$(GO) vet -vettool=$(VETTOOL) ./...

# Hold the analyzer framework to its own rules: the lint tree is part
# of ./... above, but a dedicated target keeps the self-check visible
# and runnable in isolation while iterating on an analyzer.
lint-self: tools
	$(GO) vet -vettool=$(VETTOOL) ./internal/lint/... ./cmd/cdcsvet/...

# Run the short benchmark suite with algorithm counters and gate it
# against the committed seed trajectory (BENCH_seed.json): wall time
# within +30%, deterministic counters matched exactly. See
# docs/OBSERVABILITY.md.
bench-gate:
	@mkdir -p $(BIN)
	$(GO) run ./cmd/cdcs-bench -short -json $(BIN)/bench.json
	$(GO) run ./cmd/bench-diff -seed BENCH_seed.json -run $(BIN)/bench.json

# Regenerate the committed seed after a deliberate algorithmic change
# (commit the new BENCH_seed.json together with the change).
bench-seed:
	$(GO) run ./cmd/cdcs-bench -short -json BENCH_seed.json

# Gate the steady-state pricing allocation budget: measured
# allocations per priced candidate on the WAN and NoC workloads must
# stay within the checked-in budget in internal/synth/alloc_test.go.
bench-alloc:
	$(GO) test ./internal/synth -run 'TestAllocBudget' -count=1 -v

# End-to-end smoke test of the cdcsd serving daemon: start it, submit
# the wan example, assert SSE incumbent events and Prometheus-format
# /metrics, and shut it down gracefully. See scripts/serve-smoke.sh.
serve-smoke:
	sh scripts/serve-smoke.sh

# Distributed-tracing smoke test: one daemon, one traced remote run
# via `cdcs -server ... -trace`, jq assertions on the stitched Chrome
# trace file. See scripts/trace-smoke.sh.
trace-smoke:
	sh scripts/trace-smoke.sh

# Fleet smoke test: 3 cdcsd replicas wired via -self/-peers, a steady
# and an overload cdcs-load phase, jq assertions on the JSON reports
# (errors, balance, p99, shed, forwards). See scripts/fleet-smoke.sh.
fleet-smoke:
	sh scripts/fleet-smoke.sh fleet

# Quick load demo: one daemon, one short cdcs-load burst, report on
# stdout.
load:
	sh scripts/fleet-smoke.sh quick

# Produce an example Chrome trace of the WAN synthesis — open
# $(BIN)/wan-trace.json in chrome://tracing or ui.perfetto.dev.
trace-example:
	@mkdir -p $(BIN)
	$(GO) run ./cmd/cdcs -example wan -trace $(BIN)/wan-trace.json -metrics

clean:
	rm -rf $(BIN)

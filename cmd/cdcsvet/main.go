// Command cdcsvet is the repository's static-analysis suite: seven
// go/analysis-style checks (mapiter, floatcmp, ctxflow, errsentinel,
// lockorder, implmut, chanleak) enforcing CDCS correctness invariants
// the type system cannot express — deterministic output order,
// epsilon-audited cost comparison, end-to-end context propagation,
// errors.Is sentinel matching (cross-package via facts), declared lock
// hierarchies, verify-then-mutate freshness, and leak-free goroutine
// hand-offs. See docs/LINT.md for the rules and their rationale.
//
// Two modes:
//
//	go vet -vettool=$(which cdcsvet) ./...   # the CI entry point
//	cdcsvet [./...|dir ...]                  # standalone, no cmd/go
//
// The first speaks cmd/go's vet-tool protocol (one JSON config per
// compilation unit, including in-package test files) and relays
// analysis facts between units through vetx files; the second loads
// and type-checks packages itself, analyzing module-local dependencies
// first so facts flow in-process, and reports on non-test sources
// only. Both exit non-zero when any diagnostic is reported. The
// original four analyzers support no suppression comments; the
// concurrency-invariant analyzers honor a justified
// `//cdcsvet:ignore <name> -- why` escape (docs/LINT.md).
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/lint"
	"repro/internal/lint/load"
	"repro/internal/lint/unitchecker"
)

// version is hashed into cmd/go's build cache key (-V=full); bumping
// it invalidates cached vet results, which is required whenever
// analyzer behavior or the vetx facts format changes.
const version = "v2.0.0"

func main() {
	args := os.Args[1:]
	var patterns []string
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full" || a == "-V":
			// cmd/go hashes this line into its build cache key.
			fmt.Printf("cdcsvet version %s\n", version)
			return
		case a == "-version" || a == "--version":
			// Human-facing (unlike -V, which is for cmd/go's cache):
			// reports the build like every other cdcs binary.
			fmt.Println(buildinfo.String("cdcsvet"))
			return
		case a == "-flags" || a == "--flags":
			// cmd/go asks which analyzer flags the tool accepts; none.
			fmt.Println("[]")
			return
		case a == "-h" || a == "-help" || a == "--help" || a == "help":
			usage(os.Stdout)
			return
		case strings.HasSuffix(a, ".cfg"):
			// vet-tool protocol: one compilation unit per invocation.
			os.Exit(unitchecker.Run(a, lint.Analyzers(), os.Stderr))
		case strings.HasPrefix(a, "-"):
			// Unknown flags (cmd/go may grow new ones) are ignored
			// rather than fatal, matching x/tools' unitchecker.
		default:
			patterns = append(patterns, a)
		}
	}
	os.Exit(standalone(patterns))
}

func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcsvet: %v\n", err)
		return 1
	}
	root, module, err := load.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcsvet: %v\n", err)
		return 1
	}
	loader := load.New(root, module)
	dirs, err := loader.Dirs(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdcsvet: %v\n", err)
		return 1
	}
	// The runner analyzes module-local dependencies before their
	// importers, so cross-package facts (sentinel declarations) are
	// in place when each requested package is checked; diagnostics
	// are printed only for the requested packages.
	runner := load.NewRunner(loader, lint.Analyzers())
	exit := 0
	for _, dir := range dirs {
		res, err := runner.AnalyzeDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdcsvet: %v\n", err)
			return 1
		}
		for _, d := range res.Diagnostics {
			fmt.Fprintf(os.Stderr, "%s: %s\n", loader.Fset.Position(d.Pos), d.Message)
			exit = 1
		}
	}
	return exit
}

func usage(w *os.File) {
	fmt.Fprintf(w, "cdcsvet %s — CDCS correctness-invariant analyzers\n\n", version)
	fmt.Fprintf(w, "usage:\n")
	fmt.Fprintf(w, "  go vet -vettool=$(which cdcsvet) ./...   # via cmd/go (includes test files)\n")
	fmt.Fprintf(w, "  cdcsvet [packages]                       # standalone (non-test sources)\n\n")
	fmt.Fprintf(w, "analyzers:\n")
	for _, a := range lint.Analyzers() {
		fmt.Fprintf(w, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(w, "\nsee docs/LINT.md for rationale and the no-suppression policy\n")
}

// cdcs-bench regenerates every table and figure of the paper's
// evaluation (plus this repository's extension studies) and prints
// paper-vs-measured comparison tables. Output of a full run is archived
// in EXPERIMENTS.md.
//
// Usage:
//
//	cdcs-bench                 # run all experiments (E1–E14)
//	cdcs-bench -exp table1     # run one: table1 table2 fig3 candidates fig4 fig5
//	                           #   flowsim lid bwsweep lan baseline steiner ablation scaling
//	cdcs-bench -short          # skip the slow sweeps (ablation, scaling)
//	cdcs-bench -md             # emit Markdown (EXPERIMENTS.md-style sections)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, table2, fig3, candidates, fig4, fig5, flowsim, lid, bwsweep, lan, baseline, steiner, ablation, scaling")
	short := flag.Bool("short", false, "skip the slow sweeps (ablation, scaling)")
	md := flag.Bool("md", false, "emit Markdown instead of plain text")
	workers := flag.Int("workers", 0, "candidate-pricing worker pool size for every synthesis run (0 = all CPUs, 1 = serial)")
	flag.Parse()
	experiments.SetWorkers(*workers)

	runners := []struct {
		name string
		slow bool
		run  func() experiments.Outcome
	}{
		{"table1", false, experiments.Table1},
		{"table2", false, experiments.Table2},
		{"fig3", false, experiments.Fig3},
		{"candidates", false, experiments.Candidates},
		{"fig4", false, experiments.Fig4},
		{"fig5", false, experiments.Fig5},
		{"flowsim", false, experiments.FlowValidation},
		{"lid", false, experiments.LIDSweep},
		{"bwsweep", false, experiments.BandwidthSweep},
		{"lan", false, experiments.LANCaseStudy},
		{"baseline", false, experiments.BaselineComparison},
		{"steiner", false, experiments.SteinerGap},
		{"ablation", true, experiments.Ablation},
		{"scaling", true, func() experiments.Outcome { return experiments.Scaling(nil) }},
	}

	allPassed := true
	matched := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		if *exp == "all" && *short && r.slow {
			continue
		}
		matched = true
		o := r.run()
		if *md {
			fmt.Print(report.MarkdownSection(o.ID, o.Title, o.Text, o.Records))
		} else {
			fmt.Printf("=== %s: %s ===\n\n", o.ID, o.Title)
			if o.Text != "" {
				fmt.Println(o.Text)
			}
			fmt.Println(report.FormatRecords(o.Records))
		}
		if o.Passed() {
			if !*md {
				fmt.Printf("%s: PASS\n\n", o.ID)
			}
		} else {
			fmt.Printf("%s: FAIL\n\n", o.ID)
			allPassed = false
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from: ", *exp)
		names := make([]string, len(runners))
		for i, r := range runners {
			names[i] = r.name
		}
		fmt.Fprintln(os.Stderr, strings.Join(names, ", "))
		os.Exit(2)
	}
	if !allPassed {
		os.Exit(1)
	}
}

// cdcs-bench regenerates every table and figure of the paper's
// evaluation (plus this repository's extension studies) and prints
// paper-vs-measured comparison tables. Output of a full run is archived
// in EXPERIMENTS.md.
//
// Usage:
//
//	cdcs-bench                 # run all experiments (E1–E14)
//	cdcs-bench -exp table1     # run one: table1 table2 fig3 candidates fig4 fig5
//	                           #   flowsim lid bwsweep lan baseline steiner ablation scaling
//	cdcs-bench -short          # skip the slow sweeps (ablation, scaling)
//	cdcs-bench -md             # emit Markdown (EXPERIMENTS.md-style sections)
//	cdcs-bench -timeout 2s     # per-synthesis-run deadline (anytime degradation)
//	cdcs-bench -json out.json  # also write a machine-readable baseline
//	                           #   (per-experiment pass/fail + wall time);
//	                           #   BENCH_seed.json in the repo root is the
//	                           #   committed reference trajectory
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

// benchBaseline is the machine-readable run record written by -json: a
// perf/regression trajectory point for comparison across commits.
type benchBaseline struct {
	GoVersion string           `json:"goVersion"`
	GOOS      string           `json:"goos"`
	GOARCH    string           `json:"goarch"`
	NumCPU    int              `json:"numCPU"`
	Workers   int              `json:"workers"`
	Timeout   string           `json:"timeout,omitempty"`
	Short     bool             `json:"short"`
	Runs      []benchRunRecord `json:"runs"`
}

type benchRunRecord struct {
	ID        string  `json:"id"`
	Name      string  `json:"name"`
	Title     string  `json:"title"`
	Passed    bool    `json:"passed"`
	ElapsedMs float64 `json:"elapsedMs"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, table2, fig3, candidates, fig4, fig5, flowsim, lid, bwsweep, lan, baseline, steiner, ablation, scaling")
	short := flag.Bool("short", false, "skip the slow sweeps (ablation, scaling)")
	md := flag.Bool("md", false, "emit Markdown instead of plain text")
	workers := flag.Int("workers", 0, "candidate-pricing worker pool size for every synthesis run (0 = all CPUs, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "per-synthesis-run deadline for every experiment (0 = none); expired runs degrade instead of hanging")
	jsonPath := flag.String("json", "", "write a machine-readable baseline (per-experiment pass/fail and wall time) to this file")
	flag.Parse()
	experiments.SetWorkers(*workers)
	experiments.SetTimeout(*timeout)

	runners := []struct {
		name string
		slow bool
		run  func() experiments.Outcome
	}{
		{"table1", false, experiments.Table1},
		{"table2", false, experiments.Table2},
		{"fig3", false, experiments.Fig3},
		{"candidates", false, experiments.Candidates},
		{"fig4", false, experiments.Fig4},
		{"fig5", false, experiments.Fig5},
		{"flowsim", false, experiments.FlowValidation},
		{"lid", false, experiments.LIDSweep},
		{"bwsweep", false, experiments.BandwidthSweep},
		{"lan", false, experiments.LANCaseStudy},
		{"baseline", false, experiments.BaselineComparison},
		{"steiner", false, experiments.SteinerGap},
		{"ablation", true, experiments.Ablation},
		{"scaling", true, func() experiments.Outcome { return experiments.Scaling(nil) }},
	}

	baseline := benchBaseline{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Workers:   *workers,
		Short:     *short,
	}
	if *timeout > 0 {
		baseline.Timeout = timeout.String()
	}

	allPassed := true
	matched := false
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		if *exp == "all" && *short && r.slow {
			continue
		}
		matched = true
		runStart := time.Now()
		o := r.run()
		elapsed := time.Since(runStart)
		baseline.Runs = append(baseline.Runs, benchRunRecord{
			ID:        o.ID,
			Name:      r.name,
			Title:     o.Title,
			Passed:    o.Passed(),
			ElapsedMs: float64(elapsed.Microseconds()) / 1000,
		})
		if *md {
			fmt.Print(report.MarkdownSection(o.ID, o.Title, o.Text, o.Records))
		} else {
			fmt.Printf("=== %s: %s ===\n\n", o.ID, o.Title)
			if o.Text != "" {
				fmt.Println(o.Text)
			}
			fmt.Println(report.FormatRecords(o.Records))
		}
		if o.Passed() {
			if !*md {
				fmt.Printf("%s: PASS\n\n", o.ID)
			}
		} else {
			fmt.Printf("%s: FAIL\n\n", o.ID)
			allPassed = false
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from: ", *exp)
		names := make([]string, len(runners))
		for i, r := range runners {
			names[i] = r.name
		}
		fmt.Fprintln(os.Stderr, strings.Join(names, ", "))
		os.Exit(2)
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(baseline, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdcs-bench: encode baseline:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cdcs-bench: write baseline:", err)
			os.Exit(1)
		}
		fmt.Printf("baseline written to %s\n", *jsonPath)
	}
	if !allPassed {
		os.Exit(1)
	}
}

// cdcs-bench regenerates every table and figure of the paper's
// evaluation (plus this repository's extension studies) and prints
// paper-vs-measured comparison tables. Output of a full run is archived
// in EXPERIMENTS.md.
//
// Usage:
//
//	cdcs-bench                 # run all experiments (E1–E14)
//	cdcs-bench -exp table1     # run one: table1 table2 fig3 candidates fig4 fig5
//	                           #   flowsim lid bwsweep lan baseline steiner ablation scaling
//	cdcs-bench -short          # skip the slow sweeps (ablation, scaling)
//	cdcs-bench -md             # emit Markdown (EXPERIMENTS.md-style sections)
//	cdcs-bench -timeout 2s     # per-synthesis-run deadline (anytime degradation)
//	cdcs-bench -json out.json  # also write a machine-readable baseline
//	                           #   (per-experiment pass/fail, wall time, and
//	                           #   the observability layer's deterministic
//	                           #   algorithm counters); BENCH_seed.json in
//	                           #   the repo root is the committed reference
//	                           #   trajectory gated by cmd/bench-diff
//	cdcs-bench -trace t.json   # write a Chrome trace_event file of every
//	                           #   synthesis phase (chrome://tracing, Perfetto)
//	cdcs-bench -metrics        # print the final metrics snapshot
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/buildinfo"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/serve"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, table2, fig3, candidates, fig4, fig5, flowsim, lid, bwsweep, lan, baseline, steiner, ablation, scaling")
	short := flag.Bool("short", false, "skip the slow sweeps (ablation, scaling)")
	md := flag.Bool("md", false, "emit Markdown instead of plain text")
	workers := flag.Int("workers", 0, "candidate-pricing worker pool size for every synthesis run (0 = all CPUs, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "per-synthesis-run deadline for every experiment (0 = none); expired runs degrade instead of hanging")
	jsonPath := flag.String("json", "", "write a machine-readable baseline (per-experiment pass/fail, wall time, algorithm counters) to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of every synthesis phase to this file")
	metrics := flag.Bool("metrics", false, "print the metrics snapshot after the run")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String("cdcs-bench"))
		return
	}
	// Human-readable status goes to stderr so stdout stays clean for
	// the experiment tables and the -metrics JSON snapshot.
	status := serve.NewLogger(os.Stderr, slog.LevelInfo, false)
	experiments.SetWorkers(*workers)
	experiments.SetTimeout(*timeout)

	// -json needs the counter registry even if the user asked for
	// nothing else; -trace needs the tracer. The sink serves every
	// experiment's synthesis runs.
	sink := obs.New(obs.Config{
		Tracing:     *tracePath != "",
		Metrics:     *jsonPath != "" || *metrics,
		PprofLabels: true,
	})
	experiments.SetSink(sink)

	runners := []struct {
		name string
		slow bool
		run  func() experiments.Outcome
	}{
		{"table1", false, experiments.Table1},
		{"table2", false, experiments.Table2},
		{"fig3", false, experiments.Fig3},
		{"candidates", false, experiments.Candidates},
		{"fig4", false, experiments.Fig4},
		{"fig5", false, experiments.Fig5},
		{"flowsim", false, experiments.FlowValidation},
		{"lid", false, experiments.LIDSweep},
		{"bwsweep", false, experiments.BandwidthSweep},
		{"lan", false, experiments.LANCaseStudy},
		{"baseline", false, experiments.BaselineComparison},
		{"steiner", false, experiments.SteinerGap},
		{"ablation", true, experiments.Ablation},
		{"scaling", true, func() experiments.Outcome { return experiments.Scaling(nil) }},
	}

	baseline := benchfmt.Baseline{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Workers:   *workers,
		Short:     *short,
	}
	if *timeout > 0 {
		baseline.Timeout = timeout.String()
	}

	allPassed := true
	matched := false
	prev := sink.Metrics().Snapshot().CounterMap()
	for _, r := range runners {
		if *exp != "all" && *exp != r.name {
			continue
		}
		if *exp == "all" && *short && r.slow {
			continue
		}
		matched = true
		runStart := time.Now()
		o := r.run()
		elapsed := time.Since(runStart)
		rec := benchfmt.Run{
			ID:        o.ID,
			Name:      r.name,
			Title:     o.Title,
			Passed:    o.Passed(),
			ElapsedMs: float64(elapsed.Microseconds()) / 1000,
		}
		// The registry accumulates across the whole process; the run's
		// own counters are the delta against the previous snapshot.
		if *jsonPath != "" {
			cur := sink.Metrics().Snapshot().CounterMap()
			rec.Counters = counterDelta(prev, cur)
			prev = cur
		}
		baseline.Runs = append(baseline.Runs, rec)
		if *md {
			fmt.Print(report.MarkdownSection(o.ID, o.Title, o.Text, o.Records))
		} else {
			fmt.Printf("=== %s: %s ===\n\n", o.ID, o.Title)
			if o.Text != "" {
				fmt.Println(o.Text)
			}
			fmt.Println(report.FormatRecords(o.Records))
		}
		if o.Passed() {
			if !*md {
				fmt.Printf("%s: PASS\n\n", o.ID)
			}
		} else {
			fmt.Printf("%s: FAIL\n\n", o.ID)
			allPassed = false
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; choose from: ", *exp)
		names := make([]string, len(runners))
		for i, r := range runners {
			names[i] = r.name
		}
		fmt.Fprintln(os.Stderr, strings.Join(names, ", "))
		os.Exit(2)
	}
	if !*md {
		// Cumulative planner-cache behavior across every run above.
		// Misses count actual solves under the single-flight cache, so
		// misses == entries on a quiesced process unless a planner was
		// reused across instances.
		cur := sink.Metrics().Snapshot().CounterMap()
		fmt.Printf("plan cache totals: %d hits / %d misses / %d entries\n\n",
			cur["p2p/cache/hits"], cur["p2p/cache/misses"], cur["p2p/cache/entries"])
	}
	if *jsonPath != "" {
		if err := baseline.Write(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "cdcs-bench: write baseline:", err)
			os.Exit(1)
		}
		status.Info("baseline written", "path", *jsonPath)
	}
	if *tracePath != "" {
		data, err := sink.Tracer().ChromeTrace()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdcs-bench: encode trace:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*tracePath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cdcs-bench: write trace:", err)
			os.Exit(1)
		}
		status.Info("trace written", "path", *tracePath, "viewer", "chrome://tracing or ui.perfetto.dev")
	}
	if *metrics {
		data, err := sink.Metrics().Snapshot().JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdcs-bench: encode metrics:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	}
	if !allPassed {
		os.Exit(1)
	}
}

// counterDelta returns cur minus prev, dropping zero deltas so
// experiments that run no synthesis carry no counters at all.
func counterDelta(prev, cur map[string]int64) map[string]int64 {
	var out map[string]int64
	for name, v := range cur {
		if d := v - prev[name]; d != 0 {
			if out == nil {
				out = make(map[string]int64)
			}
			out[name] = d
		}
	}
	return out
}

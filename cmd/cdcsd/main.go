// cdcsd is the constraint-driven communication synthesis daemon: it
// serves synthesis as bounded concurrent HTTP jobs with a live
// observability plane — per-job progress events over SSE, accumulated
// algorithm counters in Prometheus text format on /metrics, health
// probes, structured JSON logs, and optional /debug/pprof.
//
// Usage:
//
//	cdcsd [-addr :8080] [-max-jobs 2] [-retain 64] [-event-buffer 1024]
//	      [-pprof] [-log-level info] [-version]
//
// A job walkthrough:
//
//	curl -s -X POST localhost:8080/v1/synthesize -d '{"example":"wan"}'
//	curl -s localhost:8080/v1/jobs/j-000001
//	curl -sN localhost:8080/v1/jobs/j-000001/events     # SSE replay + tail
//	curl -s localhost:8080/metrics | grep ucp_incumbents_total
//
// Shutdown (SIGINT/SIGTERM) drains gracefully: new submissions get
// 503, in-flight jobs are canceled cooperatively and finish with their
// best incumbent as an explicitly degraded result, then the listener
// closes. See docs/OBSERVABILITY.md for the endpoint and event
// reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxJobs := flag.Int("max-jobs", 2, "synthesis jobs running concurrently (excess submissions queue)")
	retain := flag.Int("retain", 64, "jobs retained in memory (finished jobs evicted oldest-first)")
	eventBuffer := flag.Int("event-buffer", 1024, "per-job progress-event replay ring size")
	enablePprof := flag.Bool("pprof", false, "mount /debug/pprof (CPU, heap, goroutine profiles)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight jobs to return their degraded results")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.String("cdcsd"))
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "cdcsd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	log := serve.NewLogger(os.Stderr, level, true)

	version := buildinfo.Version()
	srv := serve.New(serve.Config{
		MaxConcurrent: *maxJobs,
		MaxJobs:       *retain,
		EventBuffer:   *eventBuffer,
		EnablePprof:   *enablePprof,
		Logger:        log,
		Version:       version,
	})

	// Listen before logging "ready" so /readyz can only succeed once
	// connections are actually being accepted.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "error", err.Error())
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	log.Info("cdcsd starting",
		"version", version,
		"addr", ln.Addr().String(),
		"max_jobs", *maxJobs,
		"retain", *retain,
		"pprof", *enablePprof,
	)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Error("serve failed", "error", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: mark unready and cancel in-flight jobs first —
	// they return their incumbents as degraded results and their SSE
	// streams close — then shut the HTTP layer down.
	log.Info("shutdown signal received")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Warn("drain incomplete", "error", err.Error())
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "error", err.Error())
	}
	log.Info("cdcsd stopped")
}

// cdcsd is the constraint-driven communication synthesis daemon: it
// serves synthesis as bounded concurrent HTTP jobs with a live
// observability plane — per-job progress events over SSE, accumulated
// algorithm counters in Prometheus text format on /metrics, health
// probes, structured JSON logs, and optional /debug/pprof.
//
// Usage:
//
//	cdcsd [-addr :8080] [-max-jobs 2] [-retain 64] [-event-buffer 1024]
//	      [-data-dir DIR] [-snapshot-every 1024] [-fsync-every 1]
//	      [-shed-watermarks degrade:shed] [-degraded-timeout 2s]
//	      [-trace-ring 256] [-self URL -peers URL,URL,...]
//	      [-drain-timeout 10s] [-pprof] [-log-level info] [-version]
//
// A job walkthrough:
//
//	curl -s -X POST localhost:8080/v1/synthesize -d '{"example":"wan"}'
//	curl -s localhost:8080/v1/jobs/j-000001
//	curl -sN localhost:8080/v1/jobs/j-000001/events     # SSE replay + tail
//	curl -s localhost:8080/metrics | grep ucp_incumbents_total
//
// With -data-dir the job table is durable: every submission, state
// transition and result is WAL-logged (and periodically compacted
// into a snapshot), and a restart — graceful or kill -9 — replays it.
// Finished jobs come back queryable with their exact results;
// interrupted jobs are re-queued through the synth pipeline and
// marked "restarted". Overload is handled in tiers: beyond the
// degrade watermark jobs are admitted with a tightened timeout budget
// (the anytime solver returns its best incumbent at the cap), beyond
// the shed watermark submissions get 429 + Retry-After.
//
// Shutdown (SIGINT/SIGTERM) drains gracefully: new submissions get
// 503, in-flight jobs are canceled cooperatively and finish with their
// best incumbent as an explicitly degraded result, then the listener
// closes. The drain is bounded by -drain-timeout; jobs still
// unfinished at the deadline are logged as abandoned (with -data-dir
// they are re-queued on the next start). See docs/OBSERVABILITY.md
// for the endpoint and event reference.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/durable"
	"repro/internal/fleet"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxJobs := flag.Int("max-jobs", 2, "synthesis jobs running concurrently (excess submissions queue)")
	retain := flag.Int("retain", 64, "jobs retained in memory (finished jobs evicted oldest-first)")
	eventBuffer := flag.Int("event-buffer", 1024, "per-job progress-event replay ring size")
	enablePprof := flag.Bool("pprof", false, "mount /debug/pprof (CPU, heap, goroutine profiles)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight jobs to return their degraded results; jobs still unfinished at the deadline are abandoned (and re-queued on the next start with -data-dir)")
	dataDir := flag.String("data-dir", "", "durable job-table directory (WAL + snapshots); a restart replays it — finished jobs restored, interrupted jobs re-queued. Empty = in-memory only")
	snapshotEvery := flag.Int("snapshot-every", 1024, "WAL records between snapshot compactions")
	fsyncEvery := flag.Int("fsync-every", 1, "WAL records per batched fsync (group commit; 1 = sync every record)")
	shedWatermarks := flag.String("shed-watermarks", "", "tiered admission watermarks as degrade:shed unfinished-job loads (default 2*max-jobs:4*max-jobs)")
	self := flag.String("self", "", "this replica's base URL as peers see it (e.g. http://10.0.0.1:8080); required with -peers")
	peers := flag.String("peers", "", "comma-separated base URLs of all fleet replicas (self included or not); enables rendezvous job routing and peer forwarding")
	degradedTimeout := flag.Duration("degraded-timeout", 2*time.Second, "per-job budget cap applied in the degraded admission tier")
	traceRing := flag.Int("trace-ring", 0, "finished distributed traces retained for GET /v1/traces/{traceID} (oldest evicted first); 0 = default")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.String("cdcsd"))
		return
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "cdcsd: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	log := serve.NewLogger(os.Stderr, level, true)

	var shed serve.ShedConfig
	if *shedWatermarks != "" {
		if _, err := fmt.Sscanf(*shedWatermarks, "%d:%d", &shed.DegradeAt, &shed.ShedAt); err != nil {
			fmt.Fprintf(os.Stderr, "cdcsd: bad -shed-watermarks %q (want degrade:shed, e.g. 8:32): %v\n", *shedWatermarks, err)
			os.Exit(2)
		}
	}
	shed.DegradedTimeout = *degradedTimeout

	var router *fleet.Router
	if *peers != "" {
		if *self == "" {
			fmt.Fprintln(os.Stderr, "cdcsd: -peers requires -self (this replica's base URL)")
			os.Exit(2)
		}
		var err error
		if router, err = fleet.New(*self, strings.Split(*peers, ",")); err != nil {
			fmt.Fprintf(os.Stderr, "cdcsd: %v\n", err)
			os.Exit(2)
		}
	}

	version := buildinfo.Version()
	srv, err := serve.New(serve.Config{
		MaxConcurrent: *maxJobs,
		MaxJobs:       *retain,
		EventBuffer:   *eventBuffer,
		EnablePprof:   *enablePprof,
		Logger:        log,
		Version:       version,
		DataDir:       *dataDir,
		Durable: durable.Options{
			FsyncEvery:    *fsyncEvery,
			SnapshotEvery: *snapshotEvery,
		},
		Shed:      shed,
		Fleet:     router,
		TraceRing: *traceRing,
	})
	if err != nil {
		log.Error("startup failed", "error", err.Error())
		os.Exit(1)
	}

	// Listen before logging "ready" so /readyz can only succeed once
	// connections are actually being accepted.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error("listen failed", "addr", *addr, "error", err.Error())
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	log.Info("cdcsd starting",
		"version", version,
		"addr", ln.Addr().String(),
		"max_jobs", *maxJobs,
		"retain", *retain,
		"data_dir", *dataDir,
		"pprof", *enablePprof,
		"fleet", *peers != "",
	)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		log.Error("serve failed", "error", err.Error())
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: mark unready and cancel in-flight jobs first —
	// they return their incumbents as degraded results and their SSE
	// streams close — then shut the HTTP layer down.
	log.Info("shutdown signal received")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		// The bounded drain expired with work still in flight: name
		// every abandoned job. With -data-dir they are re-queued on
		// the next start; without it they are simply lost.
		abandoned := srv.Unfinished()
		log.Warn("drain incomplete; abandoning jobs at the deadline",
			"error", err.Error(),
			"abandoned", len(abandoned),
			"job_ids", fmt.Sprint(abandoned),
		)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "error", err.Error())
	}
	log.Info("cdcsd stopped")
}

// cdcs-gen generates random benchmark instances (constraint graph +
// matching communication library) as JSON files consumable by cdcs.
//
// Usage:
//
//	cdcs-gen -kind wan -channels 12 -clusters 3 -seed 7 -out wan12
//	cdcs-gen -kind soc -channels 16 -modules 9 -seed 7 -out soc16
//
// writes <out>.graph.json and <out>.lib.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/model"
	"repro/internal/soc"
	"repro/internal/workloads"
)

func main() {
	kind := flag.String("kind", "wan", "instance kind: wan or soc")
	channels := flag.Int("channels", 10, "number of constraint arcs")
	clusters := flag.Int("clusters", 3, "WAN cluster count")
	modules := flag.Int("modules", 8, "SoC module count")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "instance", "output file prefix")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.String("cdcs-gen"))
		return
	}

	var cg *model.ConstraintGraph
	var lib json.Marshaler
	switch *kind {
	case "wan":
		cg = workloads.RandomWAN(workloads.RandomWANConfig{
			Seed: *seed, Clusters: *clusters, Channels: *channels,
		})
		lib = workloads.WANLibrary()
	case "soc":
		cg = workloads.RandomSoC(workloads.RandomSoCConfig{
			Seed: *seed, Modules: *modules, Channels: *channels,
		})
		lib = soc.Tech180nm().Library()
	default:
		fmt.Fprintf(os.Stderr, "cdcs-gen: unknown kind %q (wan, soc)\n", *kind)
		os.Exit(2)
	}

	write := func(suffix string, v interface{}) {
		data, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdcs-gen:", err)
			os.Exit(1)
		}
		path := *out + suffix
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cdcs-gen:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", path)
	}
	write(".graph.json", cg)
	write(".lib.json", lib)
}

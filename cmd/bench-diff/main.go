// bench-diff is the CI benchmark-regression gate: it compares a fresh
// cdcs-bench baseline against the committed seed trajectory and exits
// non-zero on a regression.
//
// Usage:
//
//	cdcs-bench -short -json bench.json
//	bench-diff -seed BENCH_seed.json -run bench.json
//
// Two gates apply per experiment. Wall time may regress by at most
// -time-tolerance (fractional; default 0.30 = +30%) plus -abs-slack-ms
// of absolute grace for sub-millisecond runs; speedups always pass.
// The observability layer's algorithm counters (prune hits, B&B nodes,
// …) must match the seed exactly — they are pure functions of the
// instance, so any drift is an algorithmic change that needs a seed
// regeneration in the same commit (go run ./cmd/cdcs-bench -short
// -json BENCH_seed.json). Scheduling-dependent counters are excluded
// via -ignore (default "p2p/cache/").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchfmt"
	"repro/internal/buildinfo"
)

func main() {
	seedPath := flag.String("seed", "BENCH_seed.json", "committed reference baseline")
	runPath := flag.String("run", "", "fresh baseline to gate (required)")
	timeTol := flag.Float64("time-tolerance", 0.30, "allowed fractional wall-time regression per run")
	absSlack := flag.Float64("abs-slack-ms", 50, "absolute grace in ms added to every time limit (negative disables)")
	ignore := flag.String("ignore", "p2p/cache/", "comma-separated counter-name prefixes excluded from exact match")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(buildinfo.String("bench-diff"))
		return
	}
	if *runPath == "" {
		fmt.Fprintln(os.Stderr, "bench-diff: -run is required")
		flag.Usage()
		os.Exit(2)
	}

	seed, err := benchfmt.Load(*seedPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-diff: load seed:", err)
		os.Exit(2)
	}
	cur, err := benchfmt.Load(*runPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-diff: load run:", err)
		os.Exit(2)
	}

	opt := benchfmt.DiffOptions{
		TimeTolerance: *timeTol,
		AbsSlackMs:    *absSlack,
	}
	// An empty -ignore means "ignore nothing", which DiffOptions encodes
	// as a non-nil empty slice.
	opt.IgnorePrefixes = []string{}
	for _, p := range strings.Split(*ignore, ",") {
		if p = strings.TrimSpace(p); p != "" {
			opt.IgnorePrefixes = append(opt.IgnorePrefixes, p)
		}
	}

	violations := benchfmt.Diff(seed, cur, opt)
	if len(violations) == 0 {
		counters := 0
		for _, r := range seed.Runs {
			counters += len(r.Counters)
		}
		fmt.Printf("bench-diff: OK — %d runs within +%d%% of seed (%s), %d counters matched\n",
			len(seed.Runs), int(*timeTol*100), seed.GoVersion, counters)
		return
	}
	fmt.Fprintf(os.Stderr, "bench-diff: %d violation(s) against %s:\n", len(violations), *seedPath)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "  "+v.String())
	}
	os.Exit(1)
}

// cdcs-load is an open-loop traffic generator for cdcsd: it offers a
// mixed synthesis workload at a fixed target QPS against one daemon
// or a whole fleet, waits each accepted job to a terminal state under
// a per-request deadline, and emits a machine-readable JSON report —
// latency percentiles, achieved throughput, shed/degrade/error rates,
// and per-replica balance.
//
// Usage:
//
//	cdcs-load -targets http://a:8080,http://b:8080 [-qps 50]
//	          [-duration 10s] [-deadline 30s] [-mix wan=2,lan=2,mcm=1]
//	          [-workload-keys 16] [-retries 1] [-report out.json]
//	          [-trace-seed N] [-no-trace] [-log-level warn] [-version]
//
// Arrivals are open-loop: the generator keeps offering work at the
// target rate whether or not earlier requests finished, so overload
// behavior (tiered degrade, shed, Retry-After) is actually reachable
// and measured instead of self-throttled away. Each arrival carries a
// rotating workload label, which a fleet's rendezvous router uses to
// spread jobs; the report attributes every completed job to the
// replica it ran on. Unless -no-trace is set, every arrival also
// roots a fresh distributed trace (traceparent header), and the
// report names the p99-slowest trace IDs as exemplars — feed one to
// `cdcs -server ... -trace out.json` to pull the stitched trace.
//
// The exit status is 0 whenever the run itself completes — overload
// outcomes are data, not failures. CI asserts on the report with jq.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/serve"
)

// exampleBodies maps mix entry names to submission body templates;
// the %s is the per-arrival workload label.
var exampleBodies = map[string]string{
	"wan":   `{"example":"wan","workload":"%s","options":{"workers":1}}`,
	"lan":   `{"example":"lan","workload":"%s","options":{"workers":1}}`,
	"mcm":   `{"example":"mcm","workload":"%s","options":{"workers":1}}`,
	"noc":   `{"example":"noc","workload":"%s","options":{"workers":1}}`,
	"mpeg4": `{"example":"mpeg4","workload":"%s","options":{"workers":1}}`,
}

func main() {
	targets := flag.String("targets", "", "comma-separated cdcsd base URLs (required); arrivals round-robin across them")
	qps := flag.Float64("qps", 50, "open-loop arrival rate, requests per second")
	duration := flag.Duration("duration", 10*time.Second, "how long to offer arrivals; the run then drains in-flight requests")
	deadline := flag.Duration("deadline", 30*time.Second, "per-request end-to-end deadline (submit through terminal state)")
	mix := flag.String("mix", "wan=2,lan=2,mcm=1", "weighted workload mix as name=weight entries (names: wan, lan, mcm, noc, mpeg4)")
	workloadKeys := flag.Int("workload-keys", 16, "distinct workload labels each mix entry rotates through (fleet routing spreads by label)")
	retries := flag.Int("retries", 1, "submission attempts per arrival; 1 counts shed responses instead of retrying them")
	traceSeed := flag.Uint64("trace-seed", 0, "seed for per-arrival distributed-trace IDs; 0 seeds randomly. The report's exemplars name the p99-slowest trace IDs, retrievable with cdcs -trace")
	noTrace := flag.Bool("no-trace", false, "disable per-arrival traceparent stamping and report exemplars")
	reportPath := flag.String("report", "", "write the JSON report to this file instead of stdout")
	logLevel := flag.String("log-level", "warn", "log level: debug, info, warn, error")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.String("cdcs-load"))
		return
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "cdcs-load: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	log := serve.NewLogger(os.Stderr, level, false)

	if *targets == "" {
		fmt.Fprintln(os.Stderr, "cdcs-load: -targets is required (comma-separated cdcsd base URLs)")
		os.Exit(2)
	}
	var targetList []string
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			targetList = append(targetList, t)
		}
	}
	specs, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdcs-load:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Tracing is on by default: every arrival roots a fresh trace, and
	// the report's exemplars point at the slowest ones for follow-up
	// with `cdcs -server ... -trace`.
	var ids *obs.IDSource
	if !*noTrace {
		ids = obs.NewIDSource(*traceSeed)
	}

	log.Info("cdcs-load starting",
		"targets", *targets, "qps", *qps, "duration", duration.String(), "mix", *mix)
	rep, err := load.Run(ctx, load.Config{
		Targets:      targetList,
		QPS:          *qps,
		Duration:     *duration,
		Deadline:     *deadline,
		Mix:          specs,
		WorkloadKeys: *workloadKeys,
		Attempts:     *retries,
		Registry:     obs.NewRegistry(),
		Logger:       log,
		TraceIDs:     ids,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdcs-load:", err)
		os.Exit(1)
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdcs-load: encode report:", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cdcs-load: write report:", err)
			os.Exit(1)
		}
		log.Info("report written", "path", *reportPath)
	} else {
		os.Stdout.Write(out)
	}
}

// parseMix turns "wan=2,lan=1" into weighted load specs.
func parseMix(s string) ([]load.Spec, error) {
	var specs []load.Spec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, weightStr, hasWeight := strings.Cut(entry, "=")
		weight := 1
		if hasWeight {
			var err error
			if weight, err = strconv.Atoi(weightStr); err != nil || weight <= 0 {
				return nil, fmt.Errorf("bad -mix entry %q: weight must be a positive integer", entry)
			}
		}
		body, ok := exampleBodies[name]
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q: unknown example %q (wan, lan, mcm, noc, mpeg4)", entry, name)
		}
		specs = append(specs, load.Spec{Name: name, Body: body, Weight: weight})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("empty -mix %q", s)
	}
	return specs, nil
}

// cdcs is the command-line constraint-driven communication synthesizer:
// it reads a constraint graph (JSON) and a communication library (JSON),
// runs the full synthesis flow, and reports the optimum architecture.
//
// Usage:
//
//	cdcs -graph wan.json -lib wan-lib.json [-dot out.dot] [-solver exact|greedy]
//	cdcs -example wan|mpeg4 [-dot out.dot] [-svg out.svg]   # built-in instance
//	cdcs -example wan -timeout 100ms                        # deadline-bounded run
//	cdcs -example wan -trace t.json -metrics                # observability on
//	cdcs -example wan -report rep.json                      # machine-readable outcome
//	cdcs -example wan -progress                             # NDJSON progress events on stdout
//	cdcs -example wan -server http://localhost:8080         # submit to a cdcsd daemon
//	cdcs -version                                           # print version and exit
//
// With -timeout the run has anytime semantics: on deadline the flow
// degrades to the best feasible architecture found so far (verified,
// possibly sub-optimal) and the report carries a degradation section
// with an optimality-gap bound; the exit code stays 0.
//
// -trace writes a Chrome trace_event JSON of the synthesis phases
// (open in chrome://tracing or ui.perfetto.dev), -metrics prints the
// algorithm-counter snapshot, and -report writes a small JSON summary
// (cost, optimality, degradation) that scripts and CI assert against
// instead of grepping the human-readable output. See
// docs/OBSERVABILITY.md.
//
// With -server the instance is submitted to a cdcsd daemon instead of
// synthesized in-process: the client retries shed (429) and draining
// (503) responses with exponential backoff — honoring the daemon's
// Retry-After hint — up to -retry attempts, polls the job to
// completion, and prints the daemon's result (also written by -report
// verbatim). -trace with -server roots a distributed trace on the
// submission and, once the job finishes, collects its spans from every
// replica and writes one stitched Perfetto file. Local-only outputs
// (-dot, -svg, -json, -metrics, -progress, -simulate) cannot be
// combined with -server.
//
// The graph JSON schema matches model.ConstraintGraph's MarshalJSON:
//
//	{"norm":"euclidean",
//	 "ports":[{"name":"A.out","module":"A","x":0,"y":0}, ...],
//	 "channels":[{"name":"a1","from":"A.out","to":"B.in","bandwidth":10}, ...]}
//
// The library JSON schema:
//
//	{"links":[{"name":"radio","bandwidth":11,"maxSpan":null,"costPerLength":2}, ...],
//	 "nodes":[{"name":"mux","kind":"mux","cost":0}, ...]}
//
// A null or missing maxSpan means the link is length-parametric
// (unbounded span).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"time"

	"repro/internal/baseline"
	"repro/internal/buildinfo"
	"repro/internal/flowsim"
	"repro/internal/impl"
	"repro/internal/library"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/p2p"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/viz"
	"repro/internal/workloads"
)

// status is the CLI's structured logger. Human-readable status lines
// go to stderr through it so stdout stays clean for machine output
// (the report tables, -metrics JSON, -progress NDJSON) and piping
// stdout into jq or a file never picks up stray prose.
var status *slog.Logger

func main() {
	graphPath := flag.String("graph", "", "constraint graph JSON file")
	libPath := flag.String("lib", "", "communication library JSON file")
	example := flag.String("example", "", "built-in instance: wan or mpeg4")
	dotPath := flag.String("dot", "", "write the implementation graph in DOT format to this file")
	svgPath := flag.String("svg", "", "write the implementation graph as an SVG drawing to this file")
	jsonPath := flag.String("json", "", "write the implementation graph as JSON to this file")
	solver := flag.String("solver", "exact", "synthesis mode: exact, greedy (heuristic covering) or baseline (greedy agglomerative merging)")
	simulate := flag.Bool("simulate", false, "validate the result with the flow simulator")
	workers := flag.Int("workers", 0, "candidate-pricing worker pool size (0 = all CPUs, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "overall synthesis deadline (0 = none); on expiry the run degrades to the best feasible architecture instead of failing")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON of the synthesis phases to this file; with -server, the stitched distributed trace collected from every replica")
	metrics := flag.Bool("metrics", false, "print the algorithm-counter snapshot after the run")
	reportPath := flag.String("report", "", "write a machine-readable JSON run summary (cost, optimality, degradation) to this file")
	progress := flag.Bool("progress", false, "stream synthesis progress events (phase boundaries, enumeration levels, incumbents) as NDJSON on stdout")
	server := flag.String("server", "", "submit to a cdcsd daemon instead of synthesizing locally; comma-separate fleet replica base URLs (e.g. http://a:8080,http://b:8080) to spread retries across them")
	retry := flag.Int("retry", 5, "with -server: attempts per request when the daemon sheds load (429/503; rotates through replicas, exponential backoff, Retry-After honored)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		fmt.Println(buildinfo.String("cdcs"))
		return
	}
	status = serve.NewLogger(os.Stderr, slog.LevelInfo, false)

	if *server != "" {
		runRemote(remoteFlags{
			server:    *server,
			retries:   *retry,
			graphPath: *graphPath,
			libPath:   *libPath,
			example:   *example,
			solver:    *solver,
			workers:   *workers,
			timeout:   *timeout,
			report:    *reportPath,
			dot:       *dotPath,
			svg:       *svgPath,
			jsonOut:   *jsonPath,
			trace:     *tracePath,
			simulate:  *simulate,
			metrics:   *metrics,
			progress:  *progress,
		})
		return
	}

	cg, lib, err := loadInputs(*graphPath, *libPath, *example)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdcs:", err)
		os.Exit(2)
	}

	// Observability: a sink only when something will read it, and a
	// pprof label naming the workload either way (visible in profiles
	// taken with -http style wrappers or external pprof attach).
	var sink *obs.Sink
	if *tracePath != "" || *metrics || *progress {
		sink = obs.New(obs.Config{Tracing: *tracePath != "", Metrics: *metrics, Events: *progress, PprofLabels: true})
	}
	ctx := obs.NewContext(context.Background(), sink)
	ctx = obs.WithLabels(ctx, "workload", workloadName(*graphPath, *example))

	// -progress: a dedicated goroutine drains the event stream to
	// stdout as NDJSON while the run publishes into it; waitProgress
	// flushes everything published so far before the report prints, so
	// event lines never interleave with the report tables.
	waitProgress := func() {}
	if *progress {
		replay, live, cancelSub := sink.Events().Subscribe(0)
		done := make(chan struct{})
		enc := json.NewEncoder(os.Stdout)
		go func() {
			defer close(done)
			for _, ev := range replay {
				_ = enc.Encode(ev)
			}
			for ev := range live {
				_ = enc.Encode(ev)
			}
		}()
		waitProgress = func() { cancelSub(); <-done }
	}

	opts := synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
		Workers: *workers,
		Timeout: *timeout,
	}
	var ig *impl.Graph
	var rep *synth.Report
	switch *solver {
	case "exact":
		ig, rep, err = synth.SynthesizeContext(ctx, cg, lib, opts)
	case "greedy":
		opts.Solver = synth.GreedySolver
		ig, rep, err = synth.SynthesizeContext(ctx, cg, lib, opts)
	case "baseline":
		var brep *baseline.Report
		ig, brep, err = baseline.Synthesize(cg, lib, baseline.Options{})
		if err == nil {
			// Adapt the baseline report to the common shape.
			rep = &synth.Report{Cost: brep.Cost, P2PCost: brep.P2PCost, Elapsed: brep.Elapsed}
		}
	default:
		fmt.Fprintf(os.Stderr, "cdcs: unknown solver %q\n", *solver)
		os.Exit(2)
	}
	waitProgress()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdcs:", err)
		os.Exit(1)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		fmt.Fprintln(os.Stderr, "cdcs: internal: result fails verification:", err)
		os.Exit(1)
	}
	printReport(cg, rep)
	printStats(ig)

	if *simulate {
		if err := runSimulation(ig); err != nil {
			fmt.Fprintln(os.Stderr, "cdcs: simulate:", err)
			os.Exit(1)
		}
	}
	if err := writeOutputs(ig, *dotPath, *svgPath, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "cdcs:", err)
		os.Exit(1)
	}
	if err := writeObsOutputs(sink, *tracePath, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "cdcs:", err)
		os.Exit(1)
	}
	if *reportPath != "" {
		if err := writeRunReport(*reportPath, *solver, cg, rep); err != nil {
			fmt.Fprintln(os.Stderr, "cdcs:", err)
			os.Exit(1)
		}
	}
}

// workloadName labels the run for runtime/pprof profiles.
func workloadName(graphPath, example string) string {
	if example != "" {
		return example
	}
	return filepath.Base(graphPath)
}

// runReport is the -report JSON: the fields scripts assert against
// (CI's deadline-smoke job checks optimal/degradation here instead of
// grepping the human-readable output).
type runReport struct {
	Solver      string   `json:"solver"`
	Channels    int      `json:"channels"`
	Cost        float64  `json:"cost"`
	P2PCost     float64  `json:"p2pCost"`
	SavingsPct  float64  `json:"savingsPercent"`
	Optimal     bool     `json:"optimal"`
	Degraded    bool     `json:"degraded"`
	Degradation []string `json:"degradation"`
	GapBound    float64  `json:"gapBound"`
	ElapsedMs   float64  `json:"elapsedMs"`
}

func writeRunReport(path, solver string, cg *model.ConstraintGraph, rep *synth.Report) error {
	rr := runReport{
		Solver:      solver,
		Channels:    cg.NumChannels(),
		Cost:        rep.Cost,
		P2PCost:     rep.P2PCost,
		SavingsPct:  rep.SavingsPercent(),
		Optimal:     rep.ResultOptimal(),
		Degraded:    rep.Degradation.Degraded(),
		Degradation: rep.Degradation.Summary(),
		GapBound:    rep.Degradation.GapBound,
		ElapsedMs:   float64(rep.Elapsed.Microseconds()) / 1000,
	}
	if rr.Degradation == nil {
		rr.Degradation = []string{}
	}
	data, err := json.MarshalIndent(rr, "", "  ")
	if err != nil {
		return fmt.Errorf("encode report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	status.Info("report written", "path", path)
	return nil
}

// writeObsOutputs exports what the sink collected.
func writeObsOutputs(sink *obs.Sink, tracePath string, metrics bool) error {
	if tracePath != "" {
		data, err := sink.Tracer().ChromeTrace()
		if err != nil {
			return fmt.Errorf("encode trace: %w", err)
		}
		if err := os.WriteFile(tracePath, data, 0o644); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
		status.Info("trace written", "path", tracePath, "viewer", "chrome://tracing or ui.perfetto.dev")
	}
	if metrics {
		data, err := sink.Metrics().Snapshot().JSON()
		if err != nil {
			return fmt.Errorf("encode metrics: %w", err)
		}
		fmt.Println(string(data))
	}
	return nil
}

func runSimulation(ig *impl.Graph) error {
	res, err := flowsim.Simulate(ig, flowsim.Config{Ticks: 600})
	if err != nil {
		return err
	}
	fmt.Println("flow simulation:")
	var rows [][]string
	for _, c := range res.Channels {
		rows = append(rows, []string{
			c.Name,
			fmt.Sprintf("%.2f", c.Offered),
			fmt.Sprintf("%.2f", c.Delivered),
			map[bool]string{true: "yes", false: "NO"}[c.Satisfied()],
		})
	}
	fmt.Println(report.Table([]string{"channel", "offered", "delivered", "satisfied"}, rows))
	if !res.AllSatisfied() {
		return fmt.Errorf("simulation found starved channels")
	}
	return nil
}

// writeOutputs writes every requested output file; any JSON-encode or
// file-write error aborts with a non-zero exit through the caller.
func writeOutputs(ig *impl.Graph, dotPath, svgPath, jsonPath string) error {
	if dotPath != "" {
		if err := os.WriteFile(dotPath, []byte(ig.Dot()), 0o644); err != nil {
			return fmt.Errorf("write DOT: %w", err)
		}
		status.Info("DOT written", "path", dotPath)
	}
	if svgPath != "" {
		svg := viz.Implementation(ig, viz.Options{ShowLabels: true})
		if err := os.WriteFile(svgPath, []byte(svg), 0o644); err != nil {
			return fmt.Errorf("write SVG: %w", err)
		}
		status.Info("SVG written", "path", svgPath)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(ig, "", "  ")
		if err != nil {
			return fmt.Errorf("encode JSON: %w", err)
		}
		if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return fmt.Errorf("write JSON: %w", err)
		}
		status.Info("JSON written", "path", jsonPath)
	}
	return nil
}

func loadInputs(graphPath, libPath, example string) (*model.ConstraintGraph, *library.Library, error) {
	switch example {
	case "wan":
		return workloads.WAN(), workloads.WANLibrary(), nil
	case "mpeg4":
		return workloads.MPEG4(), workloads.MPEG4Technology().Library(), nil
	case "":
	default:
		return nil, nil, fmt.Errorf("unknown example %q (wan, mpeg4)", example)
	}
	if graphPath == "" || libPath == "" {
		return nil, nil, fmt.Errorf("need -graph and -lib, or -example")
	}
	graphData, err := os.ReadFile(graphPath)
	if err != nil {
		return nil, nil, err
	}
	cg, err := model.DecodeConstraintGraph(graphData)
	if err != nil {
		return nil, nil, err
	}
	libData, err := os.ReadFile(libPath)
	if err != nil {
		return nil, nil, err
	}
	lib, err := library.Decode(libData)
	if err != nil {
		return nil, nil, err
	}
	return cg, lib, nil
}

func printReport(cg *model.ConstraintGraph, rep *synth.Report) {
	fmt.Printf("channels            : %d\n", cg.NumChannels())
	fmt.Printf("point-to-point cost : %.3f\n", rep.P2PCost)
	fmt.Printf("optimal cost        : %.3f\n", rep.Cost)
	fmt.Printf("savings             : %.1f%%\n", rep.SavingsPercent())
	fmt.Printf("mergings priced     : %d (infeasible %d, dominated %d)\n",
		rep.PricedMergings, rep.InfeasibleMergings, rep.DominatedMergings)
	fmt.Printf("solver optimal      : %v\n", rep.SolverOptimal)
	fmt.Printf("result optimal      : %v\n", rep.ResultOptimal())
	if rep.Workers > 0 {
		fmt.Printf("pricing workers     : %d\n", rep.Workers)
		fmt.Printf("plan cache          : %d hits / %d misses (%.1f%% hit rate), %d entries over %d shards\n",
			rep.PlanCache.Hits, rep.PlanCache.Misses, 100*rep.PlanCache.HitRate(),
			rep.PlanCache.Entries, rep.PlanCache.Shards)
		fmt.Printf("phase timings       : enumerate %v, price %v, solve %v, materialize %v\n",
			rep.Timings.Enumerate, rep.Timings.Price, rep.Timings.Solve, rep.Timings.Materialize)
	}
	fmt.Printf("elapsed             : %v\n", rep.Elapsed.Round(time.Microsecond))
	if rep.Degradation.Degraded() {
		fmt.Println("degradation         :")
		for _, line := range rep.Degradation.Summary() {
			fmt.Printf("  - %s\n", line)
		}
	}
	fmt.Println()

	var rows [][]string
	for _, c := range rep.SelectedCandidates() {
		names := make([]string, len(c.Channels))
		for i, ch := range c.Channels {
			names[i] = cg.Channel(ch).Name
		}
		detail := ""
		switch c.Kind {
		case "p2p":
			detail = describePlan(*c.Plan)
		case "merge":
			detail = fmt.Sprintf("trunk %s via mux %v → demux %v",
				c.Merge.TrunkPlan.Link.Name, c.Merge.MuxPos, c.Merge.DemuxPos)
		}
		rows = append(rows, []string{
			c.Kind,
			fmt.Sprintf("%v", names),
			fmt.Sprintf("%.3f", c.Cost),
			detail,
		})
	}
	fmt.Println(report.Table([]string{"kind", "channels", "cost", "detail"}, rows))
}

func printStats(ig *impl.Graph) {
	stats := ig.Stats()
	var rows [][]string
	for _, name := range stats.LinkTypeNames() {
		rows = append(rows, []string{
			"link " + name,
			fmt.Sprint(stats.LinksByType[name]),
			fmt.Sprintf("%.3f", stats.LengthByType[name]),
		})
	}
	if stats.Repeaters() > 0 {
		rows = append(rows, []string{"repeaters", fmt.Sprint(stats.Repeaters()), ""})
	}
	if stats.Switches() > 0 {
		rows = append(rows, []string{"switches (mux+demux)", fmt.Sprint(stats.Switches()), ""})
	}
	fmt.Println(report.Table([]string{"element", "count", "total length"}, rows))
}

func describePlan(p p2p.Plan) string {
	return p.String()
}

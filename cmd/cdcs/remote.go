package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/serve"
)

// remoteFlags is the subset of CLI state the remote path consumes;
// the local-only outputs are listed so their use with -server is a
// usage error instead of a silent no-op.
type remoteFlags struct {
	server    string
	retries   int
	graphPath string
	libPath   string
	example   string
	solver    string
	workers   int
	timeout   time.Duration
	report    string
	// trace is the stitched distributed-trace output path: the
	// submission roots a trace, and after the job finishes the client
	// fans GET /v1/traces/{traceID} out to every replica and writes
	// one Perfetto-loadable file.
	trace string

	// local-only flags, rejected when set
	dot, svg, jsonOut string
	simulate, metrics bool
	progress          bool
}

// runRemote submits the instance to a cdcsd daemon via the retrying
// client, waits for the job, prints the daemon's result, and exits
// through os.Exit on failure. Only the exact solver runs remotely —
// the daemon owns its own solver policy.
func runRemote(f remoteFlags) {
	for name, set := range map[string]bool{
		"-dot":      f.dot != "",
		"-svg":      f.svg != "",
		"-json":     f.jsonOut != "",
		"-simulate": f.simulate,
		"-metrics":  f.metrics,
		"-progress": f.progress,
	} {
		if set {
			fmt.Fprintf(os.Stderr, "cdcs: %s is local-only and cannot be combined with -server\n", name)
			os.Exit(2)
		}
	}
	if f.solver != "exact" {
		fmt.Fprintf(os.Stderr, "cdcs: -solver %s is local-only; the daemon runs the exact flow\n", f.solver)
		os.Exit(2)
	}
	spec, err := buildSpec(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdcs:", err)
		os.Exit(2)
	}

	c := client.New(client.Config{
		BaseURLs:    strings.Split(f.server, ","),
		MaxAttempts: f.retries,
		Logger:      status,
	})
	ctx := context.Background()
	// With -trace the submission roots a distributed trace: the client
	// stamps the context as a traceparent header, so the daemon's spans
	// (and any forward hops) join a trace we can collect afterwards.
	var root obs.SpanContext
	if f.trace != "" {
		root = obs.NewIDSource(0).NewRoot()
		ctx = obs.ContextWithSpanContext(ctx, root)
	}
	job, err := c.Submit(ctx, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdcs: submit:", err)
		os.Exit(1)
	}
	owner := f.server
	if job.Server != "" {
		owner = job.Server
	}
	status.Info("job submitted", "server", owner, "job_id", job.ID, "workload", job.Workload)
	fin, err := c.Wait(ctx, job.ID, 100*time.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdcs: wait:", err)
		os.Exit(1)
	}
	if fin.State != "done" {
		fmt.Fprintf(os.Stderr, "cdcs: job %s %s: %s\n", fin.ID, fin.State, fin.Error)
		os.Exit(1)
	}
	if fin.Restarted {
		status.Info("job was re-executed after a daemon restart", "job_id", fin.ID)
	}
	printRemoteResult(fin)
	if f.trace != "" {
		writeRemoteTrace(ctx, c, fin, root, f.trace)
	}
	if f.report != "" {
		if err := os.WriteFile(f.report, append(fin.Result, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cdcs: write report:", err)
			os.Exit(1)
		}
		status.Info("report written", "path", f.report)
	}
}

// writeRemoteTrace pulls the finished job's distributed trace from
// every fleet replica and writes the stitched Perfetto file. A trace
// fetch failure is a warning, not a run failure: the result already
// printed.
func writeRemoteTrace(ctx context.Context, c *client.Client, fin *client.Job, root obs.SpanContext, path string) {
	traceID := fin.TraceID
	if traceID == "" {
		// Older daemons omit the trace ID from the envelope; the trace,
		// if captured at all, is the root we submitted under.
		traceID = root.TraceID.String()
	}
	data, err := c.CollectTrace(ctx, traceID)
	if err != nil {
		status.Warn("trace collection failed", "trace_id", traceID, "error", err.Error())
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "cdcs: write trace:", err)
		os.Exit(1)
	}
	status.Info("stitched trace written",
		"path", path, "trace_id", traceID, "viewer", "chrome://tracing or ui.perfetto.dev")
}

// buildSpec renders the POST /v1/synthesize body from the same inputs
// the local path loads.
func buildSpec(f remoteFlags) ([]byte, error) {
	req := serve.SynthesizeRequest{
		Example: f.example,
		Options: serve.RequestOptions{
			Workers:   f.workers,
			TimeoutMs: f.timeout.Milliseconds(),
		},
	}
	if f.example == "" {
		if f.graphPath == "" || f.libPath == "" {
			return nil, fmt.Errorf("need -graph and -lib, or -example")
		}
		graph, err := os.ReadFile(f.graphPath)
		if err != nil {
			return nil, err
		}
		lib, err := os.ReadFile(f.libPath)
		if err != nil {
			return nil, err
		}
		req.Graph = graph
		req.Library = lib
		req.Workload = workloadName(f.graphPath, "")
	}
	return json.Marshal(req)
}

// printRemoteResult renders the daemon's result in the local report's
// style — same numbers, no candidate table (the daemon does not
// return per-candidate detail).
func printRemoteResult(job *client.Job) {
	var res serve.Result
	if err := json.Unmarshal(job.Result, &res); err != nil {
		fmt.Fprintln(os.Stderr, "cdcs: undecodable result:", err)
		os.Exit(1)
	}
	fmt.Printf("channels            : %d\n", res.Channels)
	fmt.Printf("point-to-point cost : %.3f\n", res.P2PCost)
	fmt.Printf("optimal cost        : %.3f\n", res.Cost)
	fmt.Printf("savings             : %.1f%%\n", res.SavingsPct)
	fmt.Printf("result optimal      : %v\n", res.Optimal)
	fmt.Printf("elapsed             : %.3fms (server)\n", res.ElapsedMs)
	if res.Degraded {
		fmt.Println("degradation         :")
		for _, line := range res.Degradation {
			fmt.Printf("  - %s\n", line)
		}
	}
}

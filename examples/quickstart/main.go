// Quickstart: synthesize the communication architecture of a tiny
// four-module system using the public CDCS API.
//
//	go run ./examples/quickstart
//
// The walkthrough covers the full workflow: define a constraint graph
// (ports with positions, channels with bandwidths), define a
// communication library (links and switch nodes), run the synthesizer,
// and inspect the optimum architecture.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/geom"
	"repro/internal/impl"
	"repro/internal/library"
	"repro/internal/model"
	"repro/internal/synth"
)

func main() {
	// 1. The system: a sensor hub in one corner streams to three
	//    processing units clustered 80 km away, and one local channel
	//    links two of the units.
	cg := model.NewConstraintGraph(geom.Euclidean)
	mustPort := func(name string, x, y float64) model.PortID {
		return cg.MustAddPort(model.Port{Name: name, Position: geom.Pt(x, y)})
	}
	hub1 := mustPort("hub.out1", 0, 0)
	hub2 := mustPort("hub.out2", 0, 0)
	hub3 := mustPort("hub.out3", 0, 0)
	fpgaIn := mustPort("fpga.in", 80, 2)
	gpuIn := mustPort("gpu.in", 82, -1)
	cpuIn := mustPort("cpu.in", 81, 4)
	gpuOut := mustPort("gpu.out", 82, -1)
	cpuIn2 := mustPort("cpu.in2", 81, 4)

	cg.MustAddChannel(model.Channel{Name: "hub-fpga", From: hub1, To: fpgaIn, Bandwidth: 8})
	cg.MustAddChannel(model.Channel{Name: "hub-gpu", From: hub2, To: gpuIn, Bandwidth: 8})
	cg.MustAddChannel(model.Channel{Name: "hub-cpu", From: hub3, To: cpuIn, Bandwidth: 8})
	cg.MustAddChannel(model.Channel{Name: "gpu-cpu", From: gpuOut, To: cpuIn2, Bandwidth: 4})

	// 2. The library: a cheap slow link, an expensive fast link, and
	//    free switches.
	lib := &library.Library{
		Links: []library.Link{
			{Name: "radio", Bandwidth: 10, MaxSpan: math.Inf(1), CostPerLength: 2},
			{Name: "fiber", Bandwidth: 1000, MaxSpan: math.Inf(1), CostPerLength: 4},
		},
		Nodes: []library.Node{
			{Name: "mux", Kind: library.Mux, Cost: 0},
			{Name: "demux", Kind: library.Demux, Cost: 0},
		},
	}

	// 3. Synthesize.
	ig, rep, err := synth.Synthesize(cg, lib, synth.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		log.Fatal("verification failed: ", err)
	}

	// 4. Inspect the result.
	fmt.Printf("point-to-point baseline : $%.2f\n", rep.P2PCost)
	fmt.Printf("synthesized optimum     : $%.2f (%.1f%% saved)\n\n", rep.Cost, rep.SavingsPercent())
	for _, c := range rep.SelectedCandidates() {
		names := make([]string, len(c.Channels))
		for i, ch := range c.Channels {
			names[i] = cg.Channel(ch).Name
		}
		switch c.Kind {
		case "merge":
			fmt.Printf("MERGE  %v\n", names)
			fmt.Printf("       mux at %v, trunk %s (%d segment(s)), demux at %v, $%.2f\n",
				c.Merge.MuxPos, c.Merge.TrunkPlan.Link.Name,
				c.Merge.TrunkPlan.Segments, c.Merge.DemuxPos, c.Cost)
		default:
			fmt.Printf("DIRECT %v: %v\n", names, c.Plan)
		}
	}
	fmt.Printf("\nimplementation graph: %d vertices (%d switches/repeaters), %d links\n",
		ig.NumVertices(), ig.NumCommVertices(), ig.NumLinks())
}

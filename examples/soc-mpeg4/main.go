// SoC MPEG-4: the paper's Example 2 — repeater insertion on the
// critical global channels of a multi-processor MPEG-4 decoder in a
// 0.18 µm process (Figure 5). The flow segments every channel at the
// technology's critical length l_crit = 0.6 mm and reports the repeater
// budget; the paper's total is 55.
//
//	go run ./examples/soc-mpeg4 [-svg fig5.svg]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/impl"
	"repro/internal/model"
	"repro/internal/p2p"
	"repro/internal/report"
	"repro/internal/routing"
	"repro/internal/viz"
	"repro/internal/workloads"
)

func main() {
	svgPath := flag.String("svg", "", "write the routed floorplan as SVG to this file")
	flag.Parse()

	cg := workloads.MPEG4()
	tech := workloads.MPEG4Technology()
	lib := tech.Library()

	fmt.Printf("process: %s, l_crit = %.2f mm, %d critical channels\n\n",
		tech.Name, tech.LCrit, cg.NumChannels())

	ig, plans, err := p2p.Synthesize(cg, lib, p2p.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		log.Fatal("verification failed: ", err)
	}

	var rows [][]string
	total := 0
	for i, plan := range plans {
		ch := model.ChannelID(i)
		c := cg.Channel(ch)
		reps := (plan.Segments - 1) * plan.Chains
		total += reps
		rows = append(rows, []string{
			c.Name,
			cg.Port(c.From).Module + " -> " + cg.Port(c.To).Module,
			fmt.Sprintf("%.2f", cg.Distance(ch)),
			fmt.Sprint(plan.Segments),
			fmt.Sprint(reps),
		})
	}
	fmt.Println(report.Table(
		[]string{"channel", "route", "manhattan (mm)", "segments", "repeaters"}, rows))
	fmt.Printf("\ntotal repeaters: %d (paper: %d)\n", total, workloads.MPEG4ExpectedRepeaters)
	fmt.Printf("implementation graph: %d wires, %d repeaters as communication vertices\n",
		ig.NumLinks(), ig.NumCommVertices())

	// Rectilinear embedding of every metal segment (Figure 5 style).
	routed, err := routing.RouteImplementation(ig, routing.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed wirelength: %.2f mm, congestion max/mean overlap: %d/%.2f\n",
		routed.TotalWirelength, routed.MaxOverlap, routed.MeanOverlap)

	if *svgPath != "" {
		routeMap := make(map[graph.ArcID][]geom.Point, len(routed.Routes))
		for _, r := range routed.Routes {
			routeMap[r.Arc] = r.Points
		}
		svg := viz.RoutedImplementation(ig, routeMap, viz.Options{ShowLabels: true})
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SVG written to %s\n", *svgPath)
	}
}

// NoC: an on-chip network synthesis study — eight cores of a 3×3 tiled
// die stream to a memory controller in the center tile. Run through the
// full CDCS flow with an on-chip library (critical-length wires,
// inverter repeaters, router mux/demux), the synthesizer aggregates
// traffic onto shared trunks where that saves repeaters — the seed of
// the bus/NoC topologies later frameworks (COSI) grew from this paper.
//
//	go run ./examples/noc
package main

import (
	"fmt"
	"log"

	"repro/internal/flowsim"
	"repro/internal/impl"
	"repro/internal/merging"
	"repro/internal/report"
	"repro/internal/synth"
	"repro/internal/workloads"
)

func main() {
	cg := workloads.NoC()
	lib := workloads.NoCLibrary()

	ig, rep, err := synth.Synthesize(cg, lib, synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef, MaxK: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		log.Fatal("verification failed: ", err)
	}

	fmt.Printf("8 cores -> memory controller, l_crit = 0.6 mm, Manhattan routing\n\n")

	var rows [][]string
	for _, c := range rep.SelectedCandidates() {
		names := ""
		for i, ch := range c.Channels {
			if i > 0 {
				names += "+"
			}
			names += cg.Channel(ch).Name
		}
		structure := c.Kind
		if c.Kind == "merge" {
			structure = fmt.Sprintf("merge via routers at %v/%v", c.Merge.MuxPos, c.Merge.DemuxPos)
		} else {
			structure = c.Plan.Kind()
		}
		rows = append(rows, []string{names, structure, fmt.Sprintf("%.2f", c.Cost)})
	}
	fmt.Println(report.Table([]string{"channels", "structure", "cost (active elems)"}, rows))
	fmt.Printf("\npoint-to-point: %.2f   synthesized: %.2f   saved: %.1f%%\n",
		rep.P2PCost, rep.Cost, rep.SavingsPercent())
	fmt.Printf("architecture: %d wires, %d active elements (repeaters + routers)\n",
		ig.NumLinks(), ig.NumCommVertices())

	res, err := flowsim.Simulate(ig, flowsim.Config{Ticks: 400})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow simulation: all %d channels sustained = %v\n",
		len(res.Channels), res.AllSatisfied())
}

// Pipeline: the complete front-to-back flow around the paper's
// algorithm — derive channel bandwidths from traffic models, place the
// modules, synthesize the communication architecture, embed the wires,
// and validate under load.
//
//	go run ./examples/pipeline [-seed 42]
//
// Stages:
//  1. traffic    — on/off source models per logical stream; effective
//     bandwidth at a loss target becomes the channel requirement b(a);
//  2. floorplan  — simulated-annealing placement of the modules
//     minimizing bandwidth-weighted wirelength;
//  3. synth      — the paper's exact two-step synthesis;
//  4. routing    — rectilinear wire embedding with congestion stats;
//  5. flowsim    — replay all channels concurrently; every demand must
//     be sustained.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/floorplan"
	"repro/internal/flowsim"
	"repro/internal/impl"
	"repro/internal/merging"
	"repro/internal/report"
	"repro/internal/routing"
	"repro/internal/soc"
	"repro/internal/synth"
	"repro/internal/traffic"
)

func main() {
	seed := flag.Int64("seed", 42, "random seed for the floorplanner")
	flag.Parse()

	// --- Stage 1: traffic characterization. ---
	type stream struct {
		name     string
		from, to int
		src      traffic.Source
	}
	modules := []floorplan.Module{
		{Name: "cpu"}, {Name: "dsp"}, {Name: "gpu"},
		{Name: "mem"}, {Name: "io"}, {Name: "npu"},
	}
	streams := []stream{
		{"cpu-mem", 0, 3, traffic.Source{Peak: 12, MeanOn: 40, MeanOff: 40}},
		{"dsp-mem", 1, 3, traffic.Source{Peak: 8, MeanOn: 60, MeanOff: 20}},
		{"gpu-mem", 2, 3, traffic.Source{Peak: 20, MeanOn: 30, MeanOff: 90}},
		{"mem-gpu", 3, 2, traffic.Source{Peak: 16, MeanOn: 50, MeanOff: 50}},
		{"io-cpu", 4, 0, traffic.Source{Peak: 4, MeanOn: 10, MeanOff: 90}},
		{"npu-mem", 5, 3, traffic.Source{Peak: 10, MeanOn: 80, MeanOff: 20}},
		{"cpu-npu", 0, 5, traffic.Source{Peak: 6, MeanOn: 30, MeanOff: 60}},
	}
	const buffer, loss = 150.0, 1e-4
	var demands []floorplan.Demand
	var trafficRows [][]string
	for _, s := range streams {
		bw, err := s.src.EffectiveBandwidth(buffer, loss)
		if err != nil {
			log.Fatal(err)
		}
		demands = append(demands, floorplan.Demand{From: s.from, To: s.to, Bandwidth: bw})
		trafficRows = append(trafficRows, []string{
			s.name,
			fmt.Sprintf("%.1f", s.src.Peak),
			fmt.Sprintf("%.2f", s.src.MeanRate()),
			fmt.Sprintf("%.2f", bw),
		})
	}
	fmt.Println("stage 1: effective bandwidths (buffer 150, loss 1e-4)")
	fmt.Println(report.Table([]string{"stream", "peak", "mean", "required b(a)"}, trafficRows))

	// --- Stage 2: floorplan. ---
	pl, err := floorplan.Place(modules, demands, floorplan.Options{Seed: *seed, SlotPitch: 1.8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstage 2: floorplan wirelength %.1f (bandwidth-weighted mm)\n", pl.Wirelength)
	for i, m := range modules {
		fmt.Printf("  %-4s at %v\n", m.Name, pl.Positions[i])
	}

	// --- Stage 3: synthesis. ---
	cg, err := floorplan.ToConstraintGraph(modules, demands, pl)
	if err != nil {
		log.Fatal(err)
	}
	lib := soc.Tech180nm().Library()
	ig, rep, err := synth.Synthesize(cg, lib, synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef, MaxK: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		log.Fatal("verification failed: ", err)
	}
	fmt.Printf("\nstage 3: synthesized %.2f active elements (p2p %.2f, %.1f%% saved), %d merges\n",
		rep.Cost, rep.P2PCost, rep.SavingsPercent(), len(rep.SelectedCandidates())-countP2P(rep))

	// --- Stage 4: routing. ---
	routed, err := routing.RouteImplementation(ig, routing.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 4: routed %.1f mm of wire, congestion max/mean %d/%.2f\n",
		routed.TotalWirelength, routed.MaxOverlap, routed.MeanOverlap)

	// --- Stage 5: validation under load. ---
	res, err := flowsim.Simulate(ig, flowsim.Config{Ticks: 500})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 5: flow simulation — all %d channels sustained = %v\n",
		len(res.Channels), res.AllSatisfied())
	if !res.AllSatisfied() {
		log.Fatal("pipeline produced a starving architecture")
	}
}

func countP2P(rep *synth.Report) int {
	n := 0
	for _, c := range rep.SelectedCandidates() {
		if c.Kind == "p2p" {
			n++
		}
	}
	return n
}

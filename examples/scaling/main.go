// Scaling: sweep random clustered WAN instances over the number of
// constraint arcs and compare the exact covering solver against the
// greedy heuristic — the repository's E8 extension study.
//
//	go run ./examples/scaling [-sizes 4,8,12] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"repro/internal/merging"
	"repro/internal/report"
	"repro/internal/synth"
	"repro/internal/workloads"
)

func main() {
	sizesFlag := flag.String("sizes", "4,6,8,10,12", "comma-separated channel counts")
	seed := flag.Int64("seed", 7, "base random seed")
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			log.Fatalf("bad size %q", s)
		}
		sizes = append(sizes, n)
	}

	lib := workloads.WANLibrary()
	var rows [][]string
	for _, n := range sizes {
		cg := workloads.RandomWAN(workloads.RandomWANConfig{
			Seed: *seed + int64(n), Clusters: 3, Channels: n,
		})
		opts := synth.Options{Merging: merging.Options{Policy: merging.MaxIndexRef}}

		start := time.Now()
		_, exact, err := synth.Synthesize(cg, lib, opts)
		exactTime := time.Since(start)
		if err != nil {
			log.Fatalf("|A|=%d: %v", n, err)
		}

		opts.Solver = synth.GreedySolver
		_, greedy, err := synth.Synthesize(cg, lib, opts)
		if err != nil {
			log.Fatalf("|A|=%d greedy: %v", n, err)
		}
		gap := 0.0
		if exact.Cost > 0 {
			gap = 100 * (greedy.Cost - exact.Cost) / exact.Cost
		}
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(exact.Enumeration.TotalCandidates()),
			fmt.Sprintf("%.1f", exact.P2PCost),
			fmt.Sprintf("%.1f", exact.Cost),
			fmt.Sprintf("%.1f%%", exact.SavingsPercent()),
			fmt.Sprintf("%.2f%%", gap),
			exactTime.Round(time.Millisecond).String(),
		})
	}
	fmt.Println(report.Table(
		[]string{"|A|", "candidates", "p2p cost", "optimal", "savings", "greedy gap", "time"}, rows))
}

// LAN: the fiber-vs-wireless scenario from the paper's Section 2 — a
// campus network where each channel may be realized as a fiber-optic
// link, a wireless link, or a combination of the two, and the
// synthesizer picks the cost-optimal heterogeneous mix.
//
//	go run ./examples/lan
package main

import (
	"fmt"
	"log"

	"repro/internal/flowsim"
	"repro/internal/impl"
	"repro/internal/merging"
	"repro/internal/report"
	"repro/internal/synth"
	"repro/internal/workloads"
)

func main() {
	cg := workloads.LAN()
	lib := workloads.LANLibrary()

	fmt.Printf("campus LAN: %d channels, media: wireless (54 Mbps, $1/m) vs fiber (10 Gbps, $4/m)\n\n",
		cg.NumChannels())

	ig, rep, err := synth.Synthesize(cg, lib, synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		log.Fatal("verification failed: ", err)
	}

	var rows [][]string
	for _, c := range rep.SelectedCandidates() {
		names := ""
		for i, ch := range c.Channels {
			if i > 0 {
				names += "+"
			}
			names += cg.Channel(ch).Name
		}
		switch c.Kind {
		case "p2p":
			rows = append(rows, []string{names, c.Plan.Kind(), c.Plan.Link.Name, fmt.Sprintf("%.1f", c.Cost)})
		case "merge":
			rows = append(rows, []string{names, "merge", c.Merge.TrunkPlan.Link.Name + " trunk", fmt.Sprintf("%.1f", c.Cost)})
		}
	}
	fmt.Println(report.Table([]string{"channels", "structure", "medium", "cost ($)"}, rows))
	fmt.Printf("\npoint-to-point: $%.1f   optimum: $%.1f   saved: %.1f%%\n",
		rep.P2PCost, rep.Cost, rep.SavingsPercent())

	// Validate the architecture under concurrent load.
	res, err := flowsim.Simulate(ig, flowsim.Config{Ticks: 600})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flow simulation: all %d channels sustained = %v\n",
		len(res.Channels), res.AllSatisfied())
}

// DSM/LID: the extension the paper's conclusion sketches — as process
// technology shrinks below 0.18 µm, global wires stop crossing the die
// in one clock period, and the repeater-insertion cost function must
// weigh stateless buffers against stateful relay stations (latches) per
// the latency-insensitive design methodology.
//
//	go run ./examples/dsm-lid [-premium 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/lid"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	premium := flag.Float64("premium", 4, "relay-station (latch) cost as a multiple of a buffer")
	flag.Parse()

	cg := workloads.MPEG4()
	fmt.Printf("MPEG-4 decoder critical channels under DSM scaling (latch premium %.1f×)\n\n", *premium)

	var rows [][]string
	for _, gen := range lid.DSMGenerations() {
		rep, err := lid.Analyze(cg, lid.ParamsFor(gen, *premium))
		if err != nil {
			log.Fatal(err)
		}
		single := "no"
		if rep.SingleCycle() {
			single = "yes"
		}
		rows = append(rows, []string{
			gen.Name,
			fmt.Sprintf("%.2f", gen.LCritMM),
			fmt.Sprintf("%.1f", gen.ReachMM),
			fmt.Sprint(rep.TotalBuffers),
			fmt.Sprint(rep.TotalRelays),
			single,
			fmt.Sprint(rep.MaxLatencyCycles),
			fmt.Sprintf("%.0f", rep.TotalCost),
		})
	}
	fmt.Println(report.Table(
		[]string{"process", "l_crit (mm)", "reach (mm)", "buffers", "relays", "single-cycle", "max latency", "cost"},
		rows))

	fmt.Println("\nper-channel detail at 90nm:")
	rep, err := lid.Analyze(cg, lid.ParamsFor(lid.DSMGenerations()[2], *premium))
	if err != nil {
		log.Fatal(err)
	}
	var detail [][]string
	for i, plan := range rep.Channels {
		detail = append(detail, []string{
			rep.Names[i],
			fmt.Sprintf("%.2f", plan.Distance),
			fmt.Sprint(plan.Buffers),
			fmt.Sprint(plan.RelayStations),
			fmt.Sprint(plan.LatencyCycles),
		})
	}
	fmt.Println(report.Table([]string{"channel", "d (mm)", "buffers", "relays", "latency (cyc)"}, detail))
}

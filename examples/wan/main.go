// WAN: the paper's Example 1 end to end — the five-node wide-area
// network of Figure 3, its Γ and Δ matrices (Tables 1 and 2), the
// candidate-merging counts of Section 4, and the optimum architecture of
// Figure 4 (the {a4, a5, a6} optical trunk).
//
//	go run ./examples/wan [-dot out.dot] [-svg out.svg]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/impl"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/report"
	"repro/internal/synth"
	"repro/internal/viz"
	"repro/internal/workloads"
)

func main() {
	dotPath := flag.String("dot", "", "write the implementation graph in DOT format to this file")
	svgPath := flag.String("svg", "", "write the Figure 4 architecture as SVG to this file")
	flag.Parse()

	cg := workloads.WAN()
	lib := workloads.WANLibrary()
	names := []string{"a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8"}

	fmt.Println("== Constraint graph (Figure 3) ==")
	for i := 0; i < cg.NumChannels(); i++ {
		ch := model.ChannelID(i)
		c := cg.Channel(ch)
		fmt.Printf("  %s: %s -> %s  d=%.3f km  b=%.0f Mbps\n",
			c.Name, cg.Port(c.From).Module, cg.Port(c.To).Module,
			cg.Distance(ch), c.Bandwidth)
	}

	fmt.Println("\n== Table 1: Constrained Distance Sum Matrix Γ (km) ==")
	fmt.Println(report.UpperTriangle(names, merging.Gamma(cg).At))
	fmt.Println("== Table 2: Merging Distance Sum Matrix Δ (km) ==")
	fmt.Println(report.UpperTriangle(names, merging.Delta(cg).At))

	ig, rep, err := synth.Synthesize(cg, lib, synth.Options{
		Merging: merging.Options{Policy: merging.MaxIndexRef},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ig.Verify(impl.VerifyOptions{}); err != nil {
		log.Fatal("verification failed: ", err)
	}

	fmt.Println("== Candidate mergings (Section 4) ==")
	for k := 2; k <= 8; k++ {
		if n := rep.Enumeration.Count(k); n > 0 {
			fmt.Printf("  %d-way: %d\n", k, n)
		}
	}

	fmt.Println("\n== Optimum architecture (Figure 4) ==")
	for _, c := range rep.SelectedCandidates() {
		chNames := make([]string, len(c.Channels))
		for i, ch := range c.Channels {
			chNames[i] = cg.Channel(ch).Name
		}
		if c.Kind == "merge" {
			fmt.Printf("  merge %v on %s trunk: mux %v -> demux %v  ($%.2f)\n",
				chNames, c.Merge.TrunkPlan.Link.Name, c.Merge.MuxPos, c.Merge.DemuxPos, c.Cost)
		} else {
			fmt.Printf("  %v: dedicated %s link  ($%.2f)\n", chNames, c.Plan.Link.Name, c.Cost)
		}
	}
	fmt.Printf("\n  point-to-point baseline: $%.2f\n", rep.P2PCost)
	fmt.Printf("  optimum               : $%.2f  (%.1f%% saved)\n", rep.Cost, rep.SavingsPercent())

	if *dotPath != "" {
		if err := os.WriteFile(*dotPath, []byte(ig.Dot()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nDOT written to %s\n", *dotPath)
	}
	if *svgPath != "" {
		svg := viz.Implementation(ig, viz.Options{ShowLabels: true})
		if err := os.WriteFile(*svgPath, []byte(svg), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("SVG written to %s\n", *svgPath)
	}
}

package cdcs

import (
	"errors"
	"fmt"
	"testing"
)

// The facade's sentinels must survive wrapping: every layer that adds
// context with %w keeps errors.Is working, which is why the errsentinel
// analyzer bans identity comparison against them.
func TestSentinelsMatchThroughWrapping(t *testing.T) {
	sentinels := map[string]error{
		"ErrCanceled":     ErrCanceled,
		"ErrInfeasible":   ErrInfeasible,
		"ErrCandidateCap": ErrCandidateCap,
	}
	for name, sentinel := range sentinels {
		wrapped := fmt.Errorf("synth: solving mpeg4: %w", sentinel)
		double := fmt.Errorf("cli: %w", wrapped)
		if !errors.Is(wrapped, sentinel) {
			t.Errorf("errors.Is(wrapped, %s) = false", name)
		}
		if !errors.Is(double, sentinel) {
			t.Errorf("errors.Is(double-wrapped, %s) = false", name)
		}
		// Identity comparison (the pre-fix bug the errsentinel analyzer
		// bans) would be false here: wrapping allocates a new error value.
		for other, os := range sentinels {
			if other != name && errors.Is(wrapped, os) {
				t.Errorf("wrapped %s also matches %s", name, other)
			}
		}
	}
}

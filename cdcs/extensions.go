package cdcs

import (
	"repro/internal/floorplan"
	"repro/internal/geom"
	"repro/internal/impl"
	"repro/internal/lid"
	"repro/internal/routing"
	"repro/internal/soc"
	"repro/internal/steiner"
	"repro/internal/traffic"
)

// Architecture statistics.

// ArchitectureStats summarizes an implementation graph's composition:
// link/node counts by type, lengths and cost split.
type ArchitectureStats = impl.Stats

// Stats computes the architecture summary.
func Stats(ig *ImplementationGraph) ArchitectureStats { return ig.Stats() }

// Rectilinear routing (on-chip, Manhattan-norm architectures).

// RoutingResult is a completed rectilinear wire embedding.
type RoutingResult = routing.Result

// RouteRectilinear embeds every link of a Manhattan-norm architecture
// as an L-shaped wire route with greedy congestion spreading.
func RouteRectilinear(ig *ImplementationGraph) (*RoutingResult, error) {
	return routing.RouteImplementation(ig, routing.Options{})
}

// On-chip technology and latency-insensitive analysis.

// Technology describes a process node (critical length, wire bandwidth).
type Technology = soc.Technology

// Tech180nm is the paper's 0.18 µm process (l_crit = 0.6 mm).
func Tech180nm() Technology { return soc.Tech180nm() }

// LIDParams configures the latency-insensitive analysis.
type LIDParams = lid.Params

// LIDReport is the per-architecture latency/relay-station analysis.
type LIDReport = lid.ImplementationReport

// AnalyzeLatency runs the latency-insensitive treatment over a
// synthesized on-chip architecture: per-channel forward latency in
// clock cycles and the relay-station budget.
func AnalyzeLatency(ig *ImplementationGraph, p LIDParams) (*LIDReport, error) {
	return lid.AnalyzeImplementation(ig, p)
}

// Traffic characterization.

// TrafficSource is an on/off Markov fluid source.
type TrafficSource = traffic.Source

// EffectiveBandwidth returns the bandwidth requirement of a source at a
// buffer size and loss target — the b(a) to put on a channel.
func EffectiveBandwidth(s TrafficSource, buffer, epsilon float64) (float64, error) {
	return s.EffectiveBandwidth(buffer, epsilon)
}

// Steiner trees (topology-free wirelength bounds).

// SteinerResult is a rectilinear Steiner tree over a terminal set.
type SteinerResult = steiner.Tree

// SteinerLowerBound returns a rectilinear Steiner tree over the points —
// the wirelength floor for any structure connecting them (iterated
// 1-Steiner heuristic).
func SteinerLowerBound(terminals []geom.Point) (*SteinerResult, error) {
	return steiner.SteinerTree(terminals, steiner.Options{})
}

// Floorplanning (position derivation upstream of synthesis).

type (
	// FloorplanModule is a block to place.
	FloorplanModule = floorplan.Module
	// FloorplanDemand is a directed bandwidth demand between modules.
	FloorplanDemand = floorplan.Demand
	// Floorplan is a completed placement.
	Floorplan = floorplan.Placement
)

// PlaceModules anneals modules onto a slot grid minimizing
// bandwidth-weighted wirelength; seed makes the run reproducible.
func PlaceModules(modules []FloorplanModule, demands []FloorplanDemand, seed int64) (*Floorplan, error) {
	return floorplan.Place(modules, demands, floorplan.Options{Seed: seed})
}

// FloorplanToConstraintGraph converts a placement plus demands into a
// Manhattan-norm constraint graph ready for Synthesize.
func FloorplanToConstraintGraph(modules []FloorplanModule, demands []FloorplanDemand, pl *Floorplan) (*ConstraintGraph, error) {
	return floorplan.ToConstraintGraph(modules, demands, pl)
}

package cdcs

import (
	"context"
	"errors"
	"testing"
	"time"
)

// denseSystem builds four near-parallel channels — every pair and most
// larger subsets are merge candidates — so a cap of 1 always triggers.
func denseSystem(t *testing.T) (*ConstraintGraph, *Library) {
	t.Helper()
	_, lib := buildSystem(t)
	cg := NewConstraintGraph(Euclidean)
	for i := 0; i < 4; i++ {
		u := cg.MustAddPort(Port{Name: "u" + string(rune('0'+i)), Position: Pt(0, float64(i))})
		v := cg.MustAddPort(Port{Name: "v" + string(rune('0'+i)), Position: Pt(80, float64(i))})
		cg.MustAddChannel(Channel{Name: "c" + string(rune('0'+i)), From: u, To: v, Bandwidth: 8})
	}
	return cg, lib
}

// TestFacadeTypedSentinels: the re-exported sentinels are matchable
// with errors.Is through the public API.
func TestFacadeTypedSentinels(t *testing.T) {
	cg, lib := denseSystem(t)

	// Pre-canceled context → ErrCanceled.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := SynthesizeContext(ctx, cg, lib, Options{}); !errors.Is(err, ErrCanceled) {
		t.Errorf("pre-canceled: err = %v, want errors.Is(err, ErrCanceled)", err)
	}

	// Candidate cap in abort mode → ErrCandidateCap.
	if _, _, err := Synthesize(cg, lib, Options{MaxCandidates: 1}); !errors.Is(err, ErrCandidateCap) {
		t.Errorf("cap abort: err = %v, want errors.Is(err, ErrCandidateCap)", err)
	}
}

// TestFacadeTruncateCandidates: the truncate-and-mark mode continues
// past the cap and records the cut in the report.
func TestFacadeTruncateCandidates(t *testing.T) {
	cg, lib := buildSystem(t)
	ig, rep, err := Synthesize(cg, lib, Options{MaxCandidates: 1, TruncateCandidates: true})
	if err != nil {
		t.Fatalf("truncate mode must not error: %v", err)
	}
	if err := Verify(ig); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if !rep.Degradation.EnumerationTruncated {
		t.Error("Degradation.EnumerationTruncated not set")
	}
	if !rep.Degradation.Degraded() || rep.ResultOptimal() {
		t.Errorf("Degraded=%v ResultOptimal=%v, want true/false",
			rep.Degradation.Degraded(), rep.ResultOptimal())
	}
	if rep.Cost > rep.P2PCost+1e-9 {
		t.Errorf("degraded cost %v exceeds the p2p fallback %v", rep.Cost, rep.P2PCost)
	}
}

// TestFacadeTimeout: a timeout through the facade never errors or
// returns an unverifiable result, whether or not it fires in time.
func TestFacadeTimeout(t *testing.T) {
	cg, lib := buildSystem(t)
	ig, rep, err := Synthesize(cg, lib, Options{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("Synthesize with timeout: %v", err)
	}
	if err := Verify(ig); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if rep.Cost > rep.P2PCost+1e-9 {
		t.Errorf("cost %v exceeds the p2p fallback %v", rep.Cost, rep.P2PCost)
	}
}

// TestFacadeSynthesizeContextPlain: SynthesizeContext with a live
// context behaves exactly like Synthesize.
func TestFacadeSynthesizeContextPlain(t *testing.T) {
	cg, lib := buildSystem(t)
	ig, rep, err := SynthesizeContext(context.Background(), cg, lib, Options{})
	if err != nil {
		t.Fatalf("SynthesizeContext: %v", err)
	}
	if err := Verify(ig); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if rep.Degradation.Degraded() {
		t.Errorf("unexpected degradation: %v", rep.Degradation.Summary())
	}
	if !rep.ResultOptimal() {
		t.Error("ResultOptimal() false on a clean run")
	}
}

package cdcs

import (
	"testing"
)

func TestFacadeFullOnChipFlow(t *testing.T) {
	// Traffic → floorplan → constraint graph → synthesis → stats →
	// routing → LID, entirely through the facade.
	modules := []FloorplanModule{{Name: "cpu"}, {Name: "mem"}, {Name: "dsp"}, {Name: "io"}}
	sources := map[[2]int]TrafficSource{
		{0, 1}: {Peak: 10, MeanOn: 40, MeanOff: 40},
		{2, 1}: {Peak: 8, MeanOn: 60, MeanOff: 30},
		{3, 0}: {Peak: 4, MeanOn: 20, MeanOff: 80},
	}
	var demands []FloorplanDemand
	for pair, src := range sources {
		bw, err := EffectiveBandwidth(src, 100, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		if bw < src.MeanRate() || bw > src.Peak {
			t.Fatalf("effective bandwidth %v outside [mean, peak]", bw)
		}
		demands = append(demands, FloorplanDemand{From: pair[0], To: pair[1], Bandwidth: bw})
	}
	pl, err := PlaceModules(modules, demands, 5)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := FloorplanToConstraintGraph(modules, demands, pl)
	if err != nil {
		t.Fatal(err)
	}
	ig, rep, err := Synthesize(cg, Tech180nm().Library(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(ig); err != nil {
		t.Fatal(err)
	}
	if rep.Cost > rep.P2PCost+1e-9 {
		t.Errorf("cost %v exceeds baseline", rep.Cost)
	}

	stats := Stats(ig)
	if stats.LinksByType["wire"] == 0 {
		t.Error("no wires in stats")
	}
	if stats.LinkCost+stats.NodeCost == 0 {
		t.Error("stats cost split empty")
	}

	routed, err := RouteRectilinear(ig)
	if err != nil {
		t.Fatal(err)
	}
	if routed.TotalWirelength <= 0 {
		t.Error("no wire routed")
	}

	st, err := SteinerLowerBound([]Point{Pt(0, 0), Pt(2, 0), Pt(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if st.Length != 4 {
		t.Errorf("Steiner bound = %v, want 4", st.Length)
	}

	lidRep, err := AnalyzeLatency(ig, LIDParams{
		Tech: Tech180nm(), ClockPeriodNS: 1, VelocityMMPerNS: 12,
		BufferCost: 1, LatchCost: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lidRep.SingleCycle() {
		t.Error("0.18 µm flow should be single cycle at 12 mm reach")
	}
}

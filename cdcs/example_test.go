package cdcs_test

import (
	"fmt"
	"math"

	"repro/cdcs"
)

// ExampleSynthesize synthesizes a tiny two-cluster system: three
// parallel channels that the algorithm merges onto one shared fiber
// trunk.
func ExampleSynthesize() {
	cg := cdcs.NewConstraintGraph(cdcs.Euclidean)
	var srcs, dsts []cdcs.PortID
	for i := 0; i < 3; i++ {
		srcs = append(srcs, cg.MustAddPort(cdcs.Port{
			Name: fmt.Sprintf("src%d", i), Position: cdcs.Pt(0, 0),
		}))
		dsts = append(dsts, cg.MustAddPort(cdcs.Port{
			Name: fmt.Sprintf("dst%d", i), Position: cdcs.Pt(100, float64(i-1)),
		}))
	}
	for i := 0; i < 3; i++ {
		cg.MustAddChannel(cdcs.Channel{
			Name: fmt.Sprintf("ch%d", i), From: srcs[i], To: dsts[i], Bandwidth: 8,
		})
	}

	lib := &cdcs.Library{
		Links: []cdcs.Link{
			{Name: "radio", Bandwidth: 10, MaxSpan: math.Inf(1), CostPerLength: 2},
			{Name: "fiber", Bandwidth: 1000, MaxSpan: math.Inf(1), CostPerLength: 4},
		},
		Nodes: []cdcs.Node{
			{Name: "mux", Kind: cdcs.Mux},
			{Name: "demux", Kind: cdcs.Demux},
		},
	}

	ig, report, err := cdcs.Synthesize(cg, lib, cdcs.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, c := range report.SelectedCandidates() {
		if c.Kind == "merge" {
			fmt.Printf("merged %d channels on a %s trunk\n",
				len(c.Channels), c.Merge.TrunkPlan.Link.Name)
		}
	}
	fmt.Printf("beats point-to-point: %v\n", report.Cost < report.P2PCost)
	fmt.Printf("verified: %v\n", cdcs.Verify(ig) == nil)
	// Output:
	// merged 3 channels on a fiber trunk
	// beats point-to-point: true
	// verified: true
}

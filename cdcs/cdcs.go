// Package cdcs is the public API of the constraint-driven communication
// synthesis library — a Go implementation of Pinto, Carloni and
// Sangiovanni-Vincentelli's DAC 2002 algorithm.
//
// The workflow has three steps:
//
//  1. describe the communication requirements as a constraint graph —
//     ports with positions, unidirectional channels with bandwidths;
//  2. describe the communication library — link types (bandwidth, span,
//     cost) and node types (repeaters, multiplexers, de-multiplexers);
//  3. call Synthesize to obtain the provably minimum-cost
//     implementation graph plus a report of the algorithm's decisions.
//
// A minimal program:
//
//	cg := cdcs.NewConstraintGraph(cdcs.Euclidean)
//	src := cg.MustAddPort(cdcs.Port{Name: "cpu.out", Position: cdcs.Pt(0, 0)})
//	dst := cg.MustAddPort(cdcs.Port{Name: "mem.in", Position: cdcs.Pt(80, 5)})
//	cg.MustAddChannel(cdcs.Channel{Name: "bus", From: src, To: dst, Bandwidth: 8})
//
//	lib := &cdcs.Library{
//		Links: []cdcs.Link{
//			{Name: "radio", Bandwidth: 10, MaxSpan: math.Inf(1), CostPerLength: 2},
//			{Name: "fiber", Bandwidth: 1000, MaxSpan: math.Inf(1), CostPerLength: 4},
//		},
//		Nodes: []cdcs.Node{
//			{Name: "mux", Kind: cdcs.Mux}, {Name: "demux", Kind: cdcs.Demux},
//		},
//	}
//
//	ig, report, err := cdcs.Synthesize(cg, lib, cdcs.Options{})
//
// The sub-systems (candidate enumeration, placement, covering solver,
// flow simulation, …) live in internal packages; this facade re-exports
// the types and entry points a downstream application needs. The
// examples/ directory demonstrates every feature end to end.
package cdcs

import (
	"context"
	"time"

	"repro/internal/flowsim"
	"repro/internal/geom"
	"repro/internal/impl"
	"repro/internal/library"
	"repro/internal/merging"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/synth"
	"repro/internal/ucp"
	"repro/internal/viz"
)

// Geometry.
type (
	// Point is a position in the plane.
	Point = geom.Point
	// Norm measures distances (Euclidean, Manhattan, Chebyshev).
	Norm = geom.Norm
)

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Built-in norms.
var (
	Euclidean = geom.Euclidean
	Manhattan = geom.Manhattan
	Chebyshev = geom.Chebyshev
)

// Constraint-graph model (the paper's Definition 2.1).
type (
	// ConstraintGraph is the communication requirement: ports + channels.
	ConstraintGraph = model.ConstraintGraph
	// Port is a positioned module port.
	Port = model.Port
	// Channel is a point-to-point unidirectional requirement.
	Channel = model.Channel
	// PortID and ChannelID identify ports and channels.
	PortID    = model.PortID
	ChannelID = model.ChannelID
)

// NewConstraintGraph returns an empty constraint graph under the given
// norm (nil defaults to Euclidean).
func NewConstraintGraph(norm Norm) *ConstraintGraph {
	return model.NewConstraintGraph(norm)
}

// DecodeConstraintGraph parses the JSON form produced by
// ConstraintGraph.MarshalJSON.
func DecodeConstraintGraph(data []byte) (*ConstraintGraph, error) {
	return model.DecodeConstraintGraph(data)
}

// Communication library (the paper's Definition 2.2).
type (
	// Library is the set of available links and nodes.
	Library = library.Library
	// Link is a communication link type.
	Link = library.Link
	// Node is a communication node type.
	Node = library.Node
	// NodeKind distinguishes repeaters, muxes and demuxes.
	NodeKind = library.NodeKind
)

// Node kinds.
const (
	Repeater = library.Repeater
	Mux      = library.Mux
	Demux    = library.Demux
)

// DecodeLibrary parses the JSON form produced by Library.MarshalJSON.
func DecodeLibrary(data []byte) (*Library, error) { return library.Decode(data) }

// Results.
type (
	// ImplementationGraph is the synthesized architecture
	// (Definitions 2.3–2.5).
	ImplementationGraph = impl.Graph
	// Report summarizes a synthesis run: costs, selected candidates,
	// enumeration statistics and solver counters.
	Report = synth.Report
	// Candidate is one local solution considered by the covering step.
	Candidate = synth.Candidate
	// Degradation is the Report section recording what a deadline,
	// per-phase budget, or candidate cap cut short; its zero value
	// means the run completed in full.
	Degradation = synth.Degradation
	// PricingPanicError is the typed error a panic inside a pricing
	// worker is converted to; match with errors.As.
	PricingPanicError = synth.PricingPanicError
)

// Typed sentinel errors, distinguishable with errors.Is.
var (
	// ErrCanceled: the context was already dead before synthesis
	// started (mid-run deadlines degrade instead of erroring).
	ErrCanceled = synth.ErrCanceled
	// ErrInfeasible: the covering instance has an uncoverable row.
	ErrInfeasible = ucp.ErrInfeasible
	// ErrCandidateCap: MaxCandidates was exceeded in abort mode.
	ErrCandidateCap = merging.ErrCandidateCap
)

// Options configures Synthesize. The zero value runs the full exact
// flow with the paper-faithful defaults: max-index reference policy
// (this facade installs merging.MaxIndexRef; the internal merging
// package's own zero value is the stronger AnyRef), sum-rule trunk
// capacity, exact covering solver, and candidate pricing parallelized
// across all CPUs.
type Options struct {
	// Greedy switches the covering step to the greedy heuristic
	// (faster, possibly sub-optimal).
	Greedy bool
	// StrictPruning uses the strongest sound Lemma 3.2 prune (every
	// reference arc tested) instead of the paper-matching incremental
	// policy; fewer candidates are priced, the optimum is unchanged.
	StrictPruning bool
	// KeepDominated keeps merging candidates that cannot beat their
	// channels' point-to-point implementations (grows the covering
	// instance; the optimum is unchanged).
	KeepDominated bool
	// MaxMergeArity caps the merging arity k (0 = unlimited). Large
	// dense instances enumerate C(|A|, k) sets per level; capping
	// trades completeness of the candidate set for runtime.
	MaxMergeArity int
	// MaxCandidates is a safety valve for large random instances: when
	// positive, it caps how many merging candidates enumeration may
	// accept instead of spending unbounded time pricing them. By
	// default hitting the cap aborts with an error wrapping
	// ErrCandidateCap (no partial architecture), so callers can retry
	// with a MaxMergeArity cap or a coarser instance; with
	// TruncateCandidates set, enumeration instead stops at the cap and
	// synthesis continues over the truncated candidate set, recording
	// the cut in Report.Degradation. Zero means unlimited.
	MaxCandidates int
	// TruncateCandidates switches MaxCandidates from abort to
	// truncate-and-mark (graceful degradation).
	TruncateCandidates bool
	// Workers bounds the candidate-pricing worker pool. Zero means all
	// CPUs; 1 forces the serial path. Any value produces an identical
	// report and architecture — only wall-clock time changes.
	Workers int
	// Timeout bounds the run's wall clock with anytime semantics: when
	// it expires mid-run, Synthesize still returns a feasible verified
	// architecture — possibly sub-optimal, at worst all point-to-point
	// — with Report.Degradation describing what was cut short and
	// bounding the optimality gap. Zero means no deadline.
	Timeout time.Duration
	// Observer, when non-nil, collects the run's observability data:
	// a span trace of every synthesis phase, a registry of algorithm
	// counters (prune hits, branch-and-bound nodes, planner cache
	// traffic, …), and runtime/pprof phase labels. Build one with
	// NewObserver, run Synthesize, then export with the observer's
	// Tracer()/Metrics() accessors. Nil (the default) disables
	// observability at negligible cost. See docs/OBSERVABILITY.md.
	Observer *Observer
	// Progress, when non-nil, receives the run's live progress events
	// — phase starts/ends, per-arity enumeration levels, and every
	// branch-and-bound incumbent improvement with its cost, lower
	// bound and gap — while the run is still in flight, so a long
	// anytime solve is observable before its deadline fires. The
	// callback runs on a dedicated goroutine (never on the solver's
	// hot path) over a bounded drop-oldest queue: a slow callback lags
	// but cannot stall or deadlock the run. Every event is delivered
	// before Synthesize returns. See docs/OBSERVABILITY.md for the
	// event schema.
	Progress func(Event)
}

// Observability.
type (
	// Observer collects spans, metrics and pprof labels for synthesis
	// runs; one Observer may serve many runs (counters accumulate,
	// traces grow a root span per run).
	Observer = obs.Sink
	// ObserverConfig selects an Observer's collectors.
	ObserverConfig = obs.Config
	// TraceSpan is one timed region of an exported trace.
	TraceSpan = obs.Span
	// MetricsSnapshot is a deterministic point-in-time copy of an
	// Observer's metrics.
	MetricsSnapshot = obs.Snapshot
	// Event is one progress notification from a running synthesis —
	// the value Options.Progress receives; see the obs.Event* type
	// constants for the schema.
	Event = obs.Event
)

// NewObserver builds an Observer with the collectors cfg enables.
func NewObserver(cfg ObserverConfig) *Observer { return obs.New(cfg) }

// Synthesize runs the full constraint-driven synthesis flow and returns
// the verified minimum-cost implementation graph and the run report.
func Synthesize(cg *ConstraintGraph, lib *Library, opt Options) (*ImplementationGraph, *Report, error) {
	return SynthesizeContext(context.Background(), cg, lib, opt)
}

// SynthesizeContext is Synthesize under cooperative cancellation: a
// context that is already dead on entry returns ErrCanceled, and a
// deadline hitting mid-run degrades the result (see Options.Timeout)
// instead of erroring, so a service calling this under load never
// hangs, panics, or comes back empty-handed on a feasible instance.
func SynthesizeContext(ctx context.Context, cg *ConstraintGraph, lib *Library, opt Options) (*ImplementationGraph, *Report, error) {
	o := synth.Options{
		Merging: merging.Options{
			Policy:        merging.MaxIndexRef,
			MaxK:          opt.MaxMergeArity,
			MaxCandidates: opt.MaxCandidates,
		},
		Workers: opt.Workers,
		Timeout: opt.Timeout,
	}
	if opt.TruncateCandidates {
		o.Merging.CapMode = merging.CapTruncate
	}
	if opt.StrictPruning {
		o.Merging.Policy = merging.AnyRef
	}
	if opt.Greedy {
		o.Solver = synth.GreedySolver
	}
	o.KeepDominated = opt.KeepDominated
	sink := opt.Observer
	if opt.Progress != nil {
		// Progress rides the sink's event stream: reuse the caller's
		// Observer (retrofitting a stream if it lacks one) or build a
		// private events-only sink. The drain goroutine decouples the
		// callback from the solver's hot path; the deferred cancel
		// closes the tail and waits, so every event published during
		// the run is delivered before this function returns.
		if sink == nil {
			sink = obs.New(obs.Config{Events: true})
		} else {
			sink.InitEvents()
		}
		replay, live, cancel := sink.Events().Subscribe(0)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for _, ev := range replay {
				opt.Progress(ev)
			}
			for ev := range live {
				opt.Progress(ev)
			}
		}()
		defer func() {
			cancel()
			<-done
		}()
	}
	if sink != nil {
		ctx = obs.NewContext(ctx, sink)
	}
	return synth.SynthesizeContext(ctx, cg, lib, o)
}

// Verify checks an implementation graph against every Definition 2.4
// constraint of its constraint graph (Synthesize already does this; the
// function is exposed for architectures built or modified by hand).
func Verify(ig *ImplementationGraph) error {
	return ig.Verify(impl.VerifyOptions{})
}

// SimulationResult is a completed flow simulation.
type SimulationResult = flowsim.Result

// Simulate replays the architecture under concurrent traffic: every
// channel injects its required bandwidth and the result reports the
// sustained per-channel throughput and per-link utilization.
func Simulate(ig *ImplementationGraph) (*SimulationResult, error) {
	return flowsim.Simulate(ig, flowsim.Config{})
}

// RenderSVG draws the implementation graph to scale as a standalone SVG
// document (dashed/solid strokes per link type, squares for
// communication vertices).
func RenderSVG(ig *ImplementationGraph) string {
	return viz.Implementation(ig, viz.Options{ShowLabels: true})
}

// RenderConstraintSVG draws the constraint graph to scale.
func RenderConstraintSVG(cg *ConstraintGraph) string {
	return viz.ConstraintGraph(cg, viz.Options{ShowLabels: true})
}

package cdcs

import (
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workloads"
)

// TestProgressCallback drives the public Options.Progress surface: the
// callback must receive the whole event stream — run bracket, every
// phase, at least one incumbent — in publication order, all delivered
// before Synthesize returns.
func TestProgressCallback(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	ig, rep, err := Synthesize(workloads.WAN(), workloads.WANLibrary(), Options{
		Workers: 1,
		Progress: func(ev Event) {
			mu.Lock()
			got = append(got, ev)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if ig == nil || !rep.ResultOptimal() {
		t.Fatal("wan run must produce an optimal graph")
	}
	// Synthesize has returned, so delivery is complete: no lock needed,
	// but keep it to stay race-detector honest.
	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("no progress events delivered")
	}
	for i, ev := range got {
		if ev.Seq != int64(i+1) {
			t.Fatalf("event %d has Seq %d, want %d (delivery must be gap-free and ordered)", i, ev.Seq, i+1)
		}
	}
	if got[0].Type != obs.EventRunStart || got[0].Channels != 8 {
		t.Errorf("first event = %+v, want run_start with 8 channels", got[0])
	}
	if last := got[len(got)-1]; last.Type != obs.EventRunEnd || !last.Optimal {
		t.Errorf("last event = %+v, want optimal run_end", last)
	}
	counts := map[string]int{}
	for _, ev := range got {
		counts[ev.Type]++
	}
	if counts[obs.EventIncumbent] == 0 {
		t.Error("no incumbent events")
	}
	if counts[obs.EventPhaseStart] != 5 || counts[obs.EventPhaseEnd] != 5 {
		t.Errorf("phase events = %d start / %d end, want 5/5", counts[obs.EventPhaseStart], counts[obs.EventPhaseEnd])
	}
}

// TestProgressWithObserver combines Progress with a caller-built
// Observer that had no event stream: the facade retrofits one and both
// collectors serve the same run.
func TestProgressWithObserver(t *testing.T) {
	obsv := NewObserver(ObserverConfig{Metrics: true})
	var events int
	_, _, err := Synthesize(workloads.WAN(), workloads.WANLibrary(), Options{
		Workers:  1,
		Observer: obsv,
		Progress: func(Event) { events++ },
	})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if events == 0 {
		t.Error("no events delivered through a retrofitted observer stream")
	}
	if obsv.Metrics().Snapshot().CounterMap()["synth/runs"] != 1 {
		t.Error("observer metrics must keep working alongside Progress")
	}
}

// TestProgressSlowCallbackDoesNotStallRun pins the bounded drop-oldest
// contract: a pathologically slow callback lags (events may drop) but
// the synthesis itself must finish promptly.
func TestProgressSlowCallbackDoesNotStallRun(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := Synthesize(workloads.WAN(), workloads.WANLibrary(), Options{
			Workers:  1,
			Progress: func(Event) { time.Sleep(2 * time.Millisecond) },
		})
		if err != nil {
			t.Errorf("Synthesize: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("slow Progress callback stalled the run")
	}
}

// TestProgressErrorEvent asserts a failing run ends its stream with
// run_error carrying the failure.
func TestProgressErrorEvent(t *testing.T) {
	cg, _ := buildSystem(t)
	// A library whose only link can neither span nor be repeated makes
	// p2p planning fail deterministically.
	lib := &Library{Links: []Link{{Name: "short", Bandwidth: 100, MaxSpan: 1, CostPerLength: 1}}}
	var got []Event
	_, _, err := Synthesize(cg, lib, Options{
		Workers:  1,
		Progress: func(ev Event) { got = append(got, ev) },
	})
	if err == nil {
		t.Fatal("want a planning error")
	}
	if len(got) == 0 {
		t.Fatal("no events delivered for the failing run")
	}
	last := got[len(got)-1]
	if last.Type != obs.EventRunError || last.Err == "" {
		t.Errorf("last event = %+v, want run_error with a message", last)
	}
}

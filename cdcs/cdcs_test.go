package cdcs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// buildSystem constructs the quickstart-style system through the facade
// only, proving the public API is self-sufficient.
func buildSystem(t *testing.T) (*ConstraintGraph, *Library) {
	t.Helper()
	cg := NewConstraintGraph(Euclidean)
	var ports []PortID
	for i, pos := range []Point{Pt(0, 0), Pt(0, 0), Pt(80, 2), Pt(82, -2)} {
		ports = append(ports, cg.MustAddPort(Port{
			Name: "p" + string(rune('0'+i)), Position: pos,
		}))
	}
	cg.MustAddChannel(Channel{Name: "c1", From: ports[0], To: ports[2], Bandwidth: 8})
	cg.MustAddChannel(Channel{Name: "c2", From: ports[1], To: ports[3], Bandwidth: 8})
	lib := &Library{
		Links: []Link{
			{Name: "radio", Bandwidth: 10, MaxSpan: math.Inf(1), CostPerLength: 2},
			{Name: "fiber", Bandwidth: 1000, MaxSpan: math.Inf(1), CostPerLength: 3},
		},
		Nodes: []Node{
			{Name: "mux", Kind: Mux}, {Name: "demux", Kind: Demux},
		},
	}
	return cg, lib
}

func TestFacadeSynthesize(t *testing.T) {
	cg, lib := buildSystem(t)
	ig, rep, err := Synthesize(cg, lib, Options{})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if err := Verify(ig); err != nil {
		t.Errorf("Verify: %v", err)
	}
	if rep.Cost > rep.P2PCost {
		t.Errorf("cost %v exceeds baseline %v", rep.Cost, rep.P2PCost)
	}
	// The two parallel channels should merge onto a fiber trunk
	// (16 Mbps > 10 Mbps radio; fiber $3 trunk beats 2×$2 radios).
	foundMerge := false
	for _, c := range rep.SelectedCandidates() {
		if c.Kind == "merge" {
			foundMerge = true
		}
	}
	if !foundMerge {
		t.Error("expected the parallel channels to merge")
	}
}

func TestFacadeOptionVariants(t *testing.T) {
	cg, lib := buildSystem(t)
	_, exact, err := Synthesize(cg, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []Options{
		{Greedy: true},
		{StrictPruning: true},
		{KeepDominated: true},
		{MaxMergeArity: 2},
		{Workers: 1},
		{Workers: 4},
		{MaxCandidates: 100},
	} {
		_, rep, err := Synthesize(cg, lib, opt)
		if err != nil {
			t.Fatalf("options %+v: %v", opt, err)
		}
		if !opt.Greedy && rep.Cost > exact.Cost+1e-9 {
			t.Errorf("options %+v: cost %v worse than exact %v", opt, rep.Cost, exact.Cost)
		}
		if opt.Greedy && rep.Cost < exact.Cost-1e-9 {
			t.Errorf("greedy beat the exact optimum: %v < %v", rep.Cost, exact.Cost)
		}
	}
}

// TestFacadeCandidateCap: the MaxCandidates safety valve must surface
// through the facade as a synthesis error (no partial result), and a
// generous cap must not disturb the flow.
func TestFacadeCandidateCap(t *testing.T) {
	_, lib := buildSystem(t)
	// Four near-parallel channels: every pair and most larger subsets
	// are merge candidates, comfortably exceeding a cap of 1.
	cg := NewConstraintGraph(Euclidean)
	for i := 0; i < 4; i++ {
		u := cg.MustAddPort(Port{Name: "u" + string(rune('0'+i)), Position: Pt(0, float64(i))})
		v := cg.MustAddPort(Port{Name: "v" + string(rune('0'+i)), Position: Pt(80, float64(i))})
		cg.MustAddChannel(Channel{Name: "c" + string(rune('0'+i)), From: u, To: v, Bandwidth: 8})
	}
	ig, rep, err := Synthesize(cg, lib, Options{MaxCandidates: 1})
	if err == nil {
		t.Fatal("cap of 1 should abort enumeration on the dense parallel system")
	}
	if ig != nil || rep != nil {
		t.Error("aborted synthesis must not return a partial result")
	}
	if !strings.Contains(err.Error(), "candidate cap") {
		t.Errorf("abort error %q does not mention the cap", err)
	}
	if _, _, err := Synthesize(cg, lib, Options{MaxCandidates: 1000}); err != nil {
		t.Errorf("generous cap aborted: %v", err)
	}
}

// TestFacadeWorkersEquivalent: the public Workers knob must not change
// the outcome, only the parallelism.
func TestFacadeWorkersEquivalent(t *testing.T) {
	cg, lib := buildSystem(t)
	_, serial, err := Synthesize(cg, lib, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, parallel, err := Synthesize(cg, lib, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Cost != parallel.Cost {
		t.Errorf("Workers changed the optimum: %v vs %v", serial.Cost, parallel.Cost)
	}
	if len(serial.Candidates) != len(parallel.Candidates) {
		t.Errorf("Workers changed the candidate count: %d vs %d",
			len(serial.Candidates), len(parallel.Candidates))
	}
	if parallel.Workers != 4 {
		t.Errorf("report workers = %d, want 4", parallel.Workers)
	}
}

func TestFacadeSimulate(t *testing.T) {
	cg, lib := buildSystem(t)
	ig, _, err := Synthesize(cg, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(ig)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !res.AllSatisfied() {
		t.Errorf("channels starved: %+v", res.Channels)
	}
}

func TestFacadeRendering(t *testing.T) {
	cg, lib := buildSystem(t)
	ig, _, err := Synthesize(cg, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, svg := range map[string]string{
		"implementation": RenderSVG(ig),
		"constraint":     RenderConstraintSVG(cg),
	} {
		if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Errorf("%s SVG malformed", name)
		}
	}
}

func TestFacadeJSONRoundTrips(t *testing.T) {
	cg, lib := buildSystem(t)
	cgData, err := json.Marshal(cg)
	if err != nil {
		t.Fatal(err)
	}
	cg2, err := DecodeConstraintGraph(cgData)
	if err != nil {
		t.Fatalf("DecodeConstraintGraph: %v", err)
	}
	if cg2.NumChannels() != cg.NumChannels() {
		t.Error("constraint graph round trip lost channels")
	}
	libData, err := json.Marshal(lib)
	if err != nil {
		t.Fatal(err)
	}
	lib2, err := DecodeLibrary(libData)
	if err != nil {
		t.Fatalf("DecodeLibrary: %v", err)
	}
	if len(lib2.Links) != len(lib.Links) {
		t.Error("library round trip lost links")
	}
	// Decoded inputs must synthesize identically.
	_, r1, err := Synthesize(cg, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := Synthesize(cg2, lib2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Cost-r2.Cost) > 1e-9 {
		t.Errorf("round-tripped inputs changed the optimum: %v vs %v", r1.Cost, r2.Cost)
	}
}
